//! The fleet driver: N node simulations advanced in lockstep
//! `LongTime` epochs, steered by one shared DeepPower policy whose
//! actions for all nodes come from a single batched forward pass.
//!
//! Each node is an independent [`Server`] session (its own cores,
//! queue, energy meter and telemetry stream); the only coupling is the
//! pre-computed balancer split of the fleet arrival stream and the
//! shared actor. At every epoch boundary the driver pauses all nodes
//! ([`Session::advance_until`]), stacks their 8-dimensional DeepPower
//! states into one `N × 8` matrix, runs one matrix–matrix inference
//! ([`Ddpg::act_batch`]) and writes each row's `(BaseFreq,
//! ScalingCoef)` into that node's thread controller. Because every
//! batched output row is bit-identical to the single-state pass (see
//! `TwoHeadActor::act_batch`), the batched fleet produces *exactly* the
//! per-node results of the naive one-node-at-a-time loop — pinned by
//! `batched_and_unbatched_fleets_agree` — while doing `1/N` of the
//! forward passes (the `fleet_scaling` bench measures the speedup).
//!
//! [`run_fleet_threaded`] runs the same lockstep drive with node
//! sessions partitioned across persistent worker threads and a barrier
//! at every epoch; it is byte-identical to the serial driver at any
//! thread count (see its docs for the protocol).

use crate::balancer::{split_arrivals, BalancerPolicy, NodeCapacity};
use crate::coordinator::Coordinator;
use crate::profile::{node_profile_indices, profile_groups, NodeProfile};
use deeppower_core::{
    ControllerParams, StateNorm, StateObserver, ThreadController, TrainConfig, TrainedPolicy,
    STATE_DIM,
};
use deeppower_drl::Ddpg;
use deeppower_nn::Matrix;
use deeppower_simd_server::{
    FaultPlan, FreqCommands, Governor, LatencyStats, OverloadPlan, Request, RequestRecord,
    RunOptions, Server, ServerConfig, ServerView, Session, MILLISECOND,
};
use deeppower_telemetry::{
    merge_gauges, FleetMonitor, HealthReport, MonitorConfig, MonitorSink, Profiler, Recorder,
    TracePlan,
};
use deeppower_workload::{trace_arrivals, App, AppSpec, DiurnalConfig, DiurnalTrace};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, OnceLock};

/// One fleet experiment: N nodes serving a shared diurnal trace behind
/// a balancer, under one trained policy (or one per profile group; see
/// [`run_fleet_hier`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetSpec {
    pub app: App,
    /// Number of server nodes. With `profiles` set this must equal the
    /// sum of profile counts (use [`FleetSpec::with_profiles`]).
    pub nodes: usize,
    pub balancer: BalancerPolicy,
    /// Master seed: the diurnal trace and request sampling derive from
    /// it deterministically.
    pub seed: u64,
    /// Peak RPS per node as a fraction of the app's capacity (the fleet
    /// trace peaks at `nodes ×` this rate).
    pub peak_load: f64,
    /// Trace duration in simulated seconds.
    pub duration_s: u64,
    /// Fault axes applied to every node. Each node draws from its own
    /// fault streams (seed offset by the node index), so a fleet under
    /// e.g. core stalls degrades node by node, not in lockstep.
    pub faults: FaultPlan,
    /// Overload plan applied to every node (bounded queue, client
    /// deadlines, retries, admission). Like faults, each node's retry
    /// RNG seed is offset by the node index so retry storms desynchronize
    /// across the fleet.
    pub overload: OverloadPlan,
    /// Hardware profiles, consecutive by node index (`[{count: 2},
    /// {count: 1}]` puts nodes 0–1 on the first profile and node 2 on
    /// the second). Empty — the historical homogeneous fleet — means
    /// `nodes ×` the app's paper-default config.
    #[serde(default)]
    pub profiles: Vec<NodeProfile>,
    /// Request-lifecycle tracing plan applied to every node. The plan's
    /// `node` field is stamped with each node's index, so one
    /// spec-level plan fans out into per-node tracers whose traces
    /// carry their origin. Default (`TracePlan::none()`) traces
    /// nothing and adds a single disabled branch per hook.
    #[serde(default)]
    pub rtrace: TracePlan,
}

impl FleetSpec {
    /// The historical homogeneous fleet: `nodes` paper-default servers,
    /// no faults, no overload plan.
    pub fn uniform(
        app: App,
        nodes: usize,
        balancer: BalancerPolicy,
        seed: u64,
        peak_load: f64,
        duration_s: u64,
    ) -> Self {
        Self {
            app,
            nodes,
            balancer,
            seed,
            peak_load,
            duration_s,
            faults: FaultPlan::none(),
            overload: OverloadPlan::none(),
            profiles: Vec::new(),
            rtrace: TracePlan::none(),
        }
    }

    /// Attach hardware profiles, recomputing `nodes` from the profile
    /// counts. Panics on an invalid profile — callers deserializing
    /// untrusted files validate via `profiles_from_json` first.
    pub fn with_profiles(mut self, profiles: Vec<NodeProfile>) -> Self {
        assert!(!profiles.is_empty(), "profile list cannot be empty");
        for p in &profiles {
            if let Err(e) = p.validate() {
                panic!("invalid fleet profile: {e}");
            }
        }
        self.nodes = profiles.iter().map(|p| p.count).sum();
        self.profiles = profiles;
        self
    }

    fn assert_consistent(&self) {
        assert!(self.nodes > 0, "fleet needs at least one node");
        if !self.profiles.is_empty() {
            let total: usize = self.profiles.iter().map(|p| p.count).sum();
            assert_eq!(
                total, self.nodes,
                "profile counts must sum to the node count"
            );
        }
    }

    /// What the balancer knows about each node (index order).
    pub fn capacities(&self) -> Vec<NodeCapacity> {
        if self.profiles.is_empty() {
            let cores = AppSpec::get(self.app).n_threads;
            vec![NodeCapacity::uniform(cores); self.nodes]
        } else {
            node_profile_indices(&self.profiles)
                .into_iter()
                .map(|k| self.profiles[k].capacity())
                .collect()
        }
    }

    /// Node indices grouped by profile (one all-nodes group for the
    /// homogeneous fleet) — the batching units of the [`Coordinator`].
    pub fn groups(&self) -> Vec<Vec<usize>> {
        if self.profiles.is_empty() {
            vec![(0..self.nodes).collect()]
        } else {
            profile_groups(&self.profiles)
        }
    }

    /// One engine config per profile group, aligned with
    /// [`FleetSpec::groups`].
    pub fn group_configs(&self) -> Vec<ServerConfig> {
        if self.profiles.is_empty() {
            vec![ServerConfig::paper_default(
                AppSpec::get(self.app).n_threads,
            )]
        } else {
            self.profiles.iter().map(|p| p.server_config()).collect()
        }
    }

    /// Profile-group index of every node (all zeros when homogeneous).
    fn group_of(&self) -> Vec<usize> {
        if self.profiles.is_empty() {
            vec![0; self.nodes]
        } else {
            node_profile_indices(&self.profiles)
        }
    }

    /// Display name of `node`'s hardware profile. The homogeneous fleet
    /// *is* the paper-default profile, so it reports the same name a
    /// one-profile `NodeProfile::paper_default` fleet would — keeping
    /// the two byte-identical in serialized results.
    fn profile_name(&self, node: usize) -> String {
        if self.profiles.is_empty() {
            "xeon-gold-5218r".into()
        } else {
            let k = node_profile_indices(&self.profiles)[node];
            self.profiles[k].name.clone()
        }
    }
}

/// Per-node slice of a fleet run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeSummary {
    pub node: usize,
    /// Requests routed to this node by the balancer.
    pub assigned: u64,
    /// Requests completed. Without an overload plan the simulator drops
    /// nothing, so this equals `assigned` (asserted by the conservation
    /// tests); with one, shed requests make it smaller and retries can
    /// make it larger.
    pub requests: u64,
    /// Completions whose client was still waiting.
    pub goodput: u64,
    /// Completions after the client abandoned (wasted work).
    pub wasted: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Retries injected by this node's closed-loop clients.
    pub retries: u64,
    pub energy_j: f64,
    pub avg_power_w: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub timeout_rate: f64,
    pub freq_transitions: u64,
    /// Deepest this node's queue ever got.
    pub peak_queue_depth: u64,
    /// Hardware profile name the node ran on.
    pub profile: String,
}

/// Fleet-level aggregates plus the per-node breakdown.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetResult {
    pub app: String,
    pub nodes: usize,
    pub balancer: String,
    pub seed: u64,
    pub peak_load: f64,
    pub duration_s: u64,
    /// Batched policy decisions taken (one per `LongTime` epoch).
    pub drl_epochs: u64,
    pub total_requests: u64,
    /// Fleet-wide goodput / wasted / shed totals (overload plans only;
    /// without one `total_goodput == total_requests` and the rest are 0).
    pub total_goodput: u64,
    pub total_wasted: u64,
    pub total_shed: u64,
    pub total_energy_j: f64,
    /// Sum of per-node average powers — the fleet's steady draw.
    pub total_power_w: f64,
    /// Percentiles over the *merged* latency records of all nodes.
    pub fleet_p50_ms: f64,
    pub fleet_p95_ms: f64,
    pub fleet_p99_ms: f64,
    pub fleet_timeout_rate: f64,
    /// Deepest any node's queue got — a max-merge across nodes (the
    /// gauge-policy fold; last-write merging under-reported this).
    pub fleet_peak_queue_depth: u64,
    pub per_node: Vec<NodeSummary>,
}

impl FleetResult {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("FleetResult serialization cannot fail")
    }
}

/// Generate the fleet-level arrival stream: the app's diurnal trace
/// with its peak scaled to `nodes × rps_for_load(peak_load)`.
pub fn fleet_arrivals(spec: &FleetSpec) -> Vec<Request> {
    let app_spec = AppSpec::get(spec.app);
    let cfg = DiurnalConfig {
        period_s: spec.duration_s,
        ..Default::default()
    };
    let mut trace = DiurnalTrace::generate(&cfg, spec.seed);
    trace.scale_peak_to(app_spec.rps_for_load(spec.peak_load) * spec.nodes as f64);
    trace_arrivals(&app_spec, &trace, spec.seed)
}

/// A policy with freshly initialized (untrained) actor weights, for
/// exercising fleet *mechanics* — scaling benches, determinism and
/// conservation tests — without paying for training. Experiments that
/// care about policy quality train via `deeppower-core` as usual.
pub fn untrained_policy(app: App, seed: u64) -> TrainedPolicy {
    let cfg = TrainConfig::for_app(app);
    let ddpg = deeppower_drl::DdpgConfig {
        seed,
        ..cfg.deeppower.ddpg
    };
    let agent = Ddpg::new(ddpg);
    TrainedPolicy {
        app,
        actor_weights: agent.actor_snapshot(),
        critic_weights: agent.critic_snapshot(),
        ddpg,
        deeppower: cfg.deeppower,
    }
}

/// Node-side governor: Algorithm 1 whose parameters live in a shared
/// cell the fleet driver rewrites at every epoch boundary. The session
/// holds the governor `&mut`, so the driver reaches past that borrow
/// through `Rc<Cell<…>>` (fleet runs are single-threaded; the
/// cross-thread story is one fleet per harness worker).
struct SharedParamsController {
    params: Rc<Cell<ControllerParams>>,
}

impl Governor for SharedParamsController {
    fn on_tick(&mut self, view: &ServerView<'_>, cmds: &mut FreqCommands) {
        ThreadController::new(self.params.get()).scale_all(view, cmds);
    }

    fn name(&self) -> &str {
        "fleet-thread-controller"
    }
}

/// Run a fleet with batched actor inference and no telemetry.
pub fn run_fleet(spec: &FleetSpec, policy: &TrainedPolicy) -> FleetResult {
    let recs = vec![Recorder::disabled(); spec.nodes];
    run_fleet_recorded(spec, policy, &recs)
}

/// [`run_fleet`] with one telemetry [`Recorder`] per node: node `i`'s
/// engine events (dispatches, completions, frequency transitions,
/// latency snapshots) land in `recs[i]`, so per-node JSONL artifacts
/// fall out the same way single-server ones do.
pub fn run_fleet_recorded(
    spec: &FleetSpec,
    policy: &TrainedPolicy,
    recs: &[Recorder],
) -> FleetResult {
    let policies = shared_policies(spec, policy);
    run_fleet_impl(spec, &policies, recs, true, &Profiler::disabled())
}

/// [`run_fleet_recorded`] with a span [`Profiler`]: the lockstep epoch
/// opens `fleet.balance` (arrival split, once up front),
/// `fleet.batch_act` (observe + batched inference), `fleet.advance`
/// (node sessions, whose `engine.*` spans nest inside) and
/// `fleet.merge` (finish + percentile merge) spans. Profiling never
/// perturbs the simulation.
pub fn run_fleet_profiled(
    spec: &FleetSpec,
    policy: &TrainedPolicy,
    recs: &[Recorder],
    prof: &Profiler,
) -> FleetResult {
    let policies = shared_policies(spec, policy);
    run_fleet_impl(spec, &policies, recs, true, prof)
}

/// Reference implementation: identical lockstep drive, but each node's
/// action comes from its own single-state forward pass. Exists so the
/// `fleet_scaling` bench can time batched against per-node inference on
/// the *same* workload, and so tests can assert the two are
/// result-identical. Not the path experiments use.
pub fn run_fleet_reference(spec: &FleetSpec, policy: &TrainedPolicy) -> FleetResult {
    let recs = vec![Recorder::disabled(); spec.nodes];
    let policies = shared_policies(spec, policy);
    run_fleet_impl(spec, &policies, &recs, false, &Profiler::disabled())
}

/// The same shared policy for every profile group — the historical
/// single-policy fleet, expressed in coordinator terms.
fn shared_policies<'a>(spec: &FleetSpec, policy: &'a TrainedPolicy) -> Vec<&'a TrainedPolicy> {
    spec.groups().iter().map(|_| policy).collect()
}

/// Every group policy must agree on the lockstep grids: the fleet runs
/// one tick/epoch cadence, whatever each group's actor weights are.
fn check_policies(spec: &FleetSpec, policies: &[&TrainedPolicy]) {
    spec.assert_consistent();
    assert_eq!(
        policies.len(),
        spec.groups().len(),
        "one policy per profile group"
    );
    let lead = policies[0];
    for p in policies {
        assert_eq!(
            p.deeppower.short_time, lead.deeppower.short_time,
            "group policies must share ShortTime (the fleet tick grid)"
        );
        assert_eq!(
            p.deeppower.long_time, lead.deeppower.long_time,
            "group policies must share LongTime (the fleet epoch grid)"
        );
    }
}

/// Hierarchical control: one trained policy per profile group
/// (HiDVFS-style), `policies[g]` steering exactly the nodes of group
/// `g` in [`FleetSpec::groups`] order. A homogeneous fleet has one
/// group, so this degenerates to [`run_fleet_threaded`]. Same
/// byte-identity-at-any-thread-count contract as the shared-policy
/// drivers; all policies must agree on `ShortTime`/`LongTime`.
pub fn run_fleet_hier(spec: &FleetSpec, policies: &[TrainedPolicy], threads: usize) -> FleetResult {
    let refs: Vec<&TrainedPolicy> = policies.iter().collect();
    run_fleet_threaded_hier(spec, &refs, threads, &Profiler::disabled())
}

/// Per-node [`RunOptions`]: every node shares the fleet's tick grid
/// (and therefore its window grid) and fault axes, but draws from its
/// own fault seed stream (`seed + node`) so faults don't strike the
/// whole fleet in lockstep.
fn node_opts(
    base: RunOptions,
    faults: FaultPlan,
    overload: OverloadPlan,
    rtrace: TracePlan,
    node: usize,
) -> RunOptions {
    RunOptions {
        faults: FaultPlan {
            seed: faults.seed.wrapping_add(node as u64),
            ..faults
        },
        overload: OverloadPlan {
            seed: overload.seed.wrapping_add(node as u64),
            ..overload
        },
        // Sampling stays keyed on the fleet-wide seed (a client's
        // retries land on the same node, and head sampling must pick
        // the same clients fleet-wide); only the origin tag varies.
        rtrace: TracePlan {
            node: node as u64,
            ..rtrace
        },
        ..base
    }
}

fn run_fleet_impl(
    spec: &FleetSpec,
    policies: &[&TrainedPolicy],
    recs: &[Recorder],
    batched: bool,
    prof: &Profiler,
) -> FleetResult {
    check_policies(spec, policies);
    assert_eq!(recs.len(), spec.nodes, "one recorder per node");
    let n = spec.nodes;
    let app_spec = AppSpec::get(spec.app);
    let group_of = spec.group_of();
    let servers: Vec<Server> = spec.group_configs().into_iter().map(Server::new).collect();
    let sp = prof.span("fleet.balance");
    let arrivals = fleet_arrivals(spec);
    let streams = split_arrivals(&arrivals, &spec.capacities(), spec.balancer);
    let assigned: Vec<u64> = streams.iter().map(|s| s.len() as u64).collect();
    drop(sp);

    let lead = policies[0];
    let mut coordinator = Coordinator::new(spec.groups(), policies);
    let opts = RunOptions {
        tick_ns: lead.deeppower.short_time,
        ..Default::default()
    };
    let cells: Vec<Rc<Cell<ControllerParams>>> = (0..n)
        .map(|_| Rc::new(Cell::new(ControllerParams::default())))
        .collect();
    let mut govs: Vec<SharedParamsController> = cells
        .iter()
        .map(|c| SharedParamsController {
            params: Rc::clone(c),
        })
        .collect();
    let mut sessions: Vec<Session<'_>> = govs
        .iter_mut()
        .zip(&streams)
        .zip(recs)
        .enumerate()
        .map(|(i, ((gov, stream), rec))| {
            servers[group_of[i]]
                .session(
                    stream,
                    gov as &mut dyn Governor,
                    node_opts(opts, spec.faults, spec.overload, spec.rtrace, i),
                    rec,
                )
                .with_profiler(prof)
        })
        .collect();
    let mut observers: Vec<StateObserver> = (0..n)
        .map(|i| StateObserver::new(policies[group_of[i]].deeppower.state_norm))
        .collect();
    let mut states = Matrix::zeros(n, STATE_DIM);
    let mut actions = vec![ControllerParams::default(); n];

    let long = lead.deeppower.long_time.max(1);
    let mut epochs = 0u64;
    loop {
        // Observe every node (the first epoch sees the pre-run empty
        // state, mirroring the single-node governor acting on its first
        // tick) and act — one grouped batched pass per profile, or N
        // single passes on the reference path. The coordinator reuses
        // its per-group out/scratch buffers across epochs so the
        // steady-state loop never allocates.
        let sp = prof.span("fleet.batch_act");
        for (i, (observer, session)) in observers.iter_mut().zip(&sessions).enumerate() {
            let s = session.with_view(|v| observer.observe(v));
            states.set_row(i, &s);
        }
        if batched {
            coordinator.act(&states, &mut actions);
        } else {
            coordinator.act_per_node(&states, &mut actions);
        }
        for (i, cell) in cells.iter().enumerate() {
            cell.set(actions[i]);
        }
        drop(sp);
        epochs += 1;
        let t_stop = epochs.saturating_mul(long);
        let sp = prof.span("fleet.advance");
        let mut all_done = true;
        for session in sessions.iter_mut() {
            if !session.advance_until(t_stop) {
                all_done = false;
            }
        }
        drop(sp);
        if all_done {
            break;
        }
    }

    let _sp = prof.span("fleet.merge");
    let results: Vec<_> = sessions.into_iter().map(Session::finish).collect();
    assemble(spec, &app_spec, epochs, &assigned, results)
}

/// Multi-threaded [`run_fleet`]: the same lockstep drive with the node
/// sessions partitioned across `threads` persistent workers and a
/// barrier at every `LongTime` epoch.
///
/// `threads == 0` means "use every available core"; any value is
/// clamped to `[1, nodes]` and `1` falls back to the serial driver. The
/// result is **byte-identical to [`run_fleet`] at any thread count** —
/// the same discipline as the harness `run_grid`:
///
/// * Node `i` lives on worker `i % threads` for its whole lifetime
///   (sessions are `!Send`, so each is created, advanced and finished
///   on one thread; there is no work stealing).
/// * Each epoch, workers write their nodes' observed states into
///   disjoint rows of one shared `N × STATE_DIM` matrix, then the
///   leader runs the *single* batched forward pass — bit-identical to
///   the serial loop's — and publishes one `ControllerParams` per node.
/// * Completion is a monotone counter: a worker adds each of its nodes
///   exactly once, the epoch it finishes, and every thread leaves the
///   loop at the same barrier when the count reaches N. The epoch count
///   and every per-node result therefore match the serial driver float
///   for float.
pub fn run_fleet_threaded(spec: &FleetSpec, policy: &TrainedPolicy, threads: usize) -> FleetResult {
    run_fleet_threaded_profiled(spec, policy, threads, &Profiler::disabled())
}

/// [`run_fleet_threaded`] with a span [`Profiler`]. The profiler keeps
/// per-thread span stacks, so worker-side `engine.*` spans never
/// interleave across nodes; the leader's `fleet.batch_act` covers the
/// batched inference exactly as in the serial driver. Profiling never
/// perturbs the simulation.
pub fn run_fleet_threaded_profiled(
    spec: &FleetSpec,
    policy: &TrainedPolicy,
    threads: usize,
    prof: &Profiler,
) -> FleetResult {
    let policies = shared_policies(spec, policy);
    run_fleet_threaded_hier(spec, &policies, threads, prof)
}

/// Thread-count dispatch shared by [`run_fleet_threaded_profiled`] and
/// [`run_fleet_hier`]: `1` falls back to the serial driver.
fn run_fleet_threaded_hier(
    spec: &FleetSpec,
    policies: &[&TrainedPolicy],
    threads: usize,
    prof: &Profiler,
) -> FleetResult {
    assert!(spec.nodes > 0, "fleet needs at least one node");
    let threads = resolve_threads(threads, spec.nodes);
    if threads == 1 {
        let recs = vec![Recorder::disabled(); spec.nodes];
        return run_fleet_impl(spec, policies, &recs, true, prof);
    }
    run_fleet_parallel(spec, policies, threads, prof)
}

/// `0` → all available cores; otherwise clamp into `[1, nodes]`.
fn resolve_threads(threads: usize, nodes: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    };
    t.min(nodes).max(1)
}

/// Run a fleet (serial or threaded, per `threads`) with a
/// [`FleetMonitor`] attached: every node's telemetry stream — window
/// rollups, injected faults, governor steps — feeds the monitor inline
/// through per-node [`MonitorSink`] recorders, and the final
/// [`HealthReport`] rides along with the fleet result.
///
/// The report is **byte-identical at any thread count**: monitor state
/// is keyed `(window, node)` and order-independent across nodes, so
/// the per-worker monitors the parallel driver merges reconstruct
/// exactly the state the serial driver builds (asserted by
/// `monitored_fleet_report_is_byte_identical_at_any_thread_count`).
pub fn run_fleet_monitored(
    spec: &FleetSpec,
    policy: &TrainedPolicy,
    threads: usize,
    cfg: MonitorConfig,
) -> (FleetResult, HealthReport) {
    let (result, monitor) = run_fleet_monitored_full(spec, policy, threads, cfg);
    let report = monitor.finish();
    (result, report)
}

/// [`run_fleet_monitored`], but hands back the merged [`FleetMonitor`]
/// itself instead of its finished [`HealthReport`]. Callers that need
/// the monitor's flight recorder — e.g. to dump the traces behind an
/// alert — take this entry point and call
/// [`FleetMonitor::finish`] themselves.
pub fn run_fleet_monitored_full(
    spec: &FleetSpec,
    policy: &TrainedPolicy,
    threads: usize,
    cfg: MonitorConfig,
) -> (FleetResult, FleetMonitor) {
    assert!(spec.nodes > 0, "fleet needs at least one node");
    let threads = resolve_threads(threads, spec.nodes);
    if threads == 1 {
        let monitor = Rc::new(RefCell::new(FleetMonitor::new(cfg)));
        let recs: Vec<Recorder> = (0..spec.nodes)
            .map(|i| Recorder::with_sink(Box::new(MonitorSink::new(Rc::clone(&monitor), i as u64))))
            .collect();
        let policies = shared_policies(spec, policy);
        let result = run_fleet_impl(spec, &policies, &recs, true, &Profiler::disabled());
        // The sessions (and with them every sink's Rc clone) died with
        // run_fleet_impl; dropping the recorders leaves this function
        // holding the only reference.
        drop(recs);
        let monitor = Rc::try_unwrap(monitor)
            .unwrap_or_else(|m| {
                unreachable!(
                    "serial fleet monitor still shared: {} refs",
                    Rc::strong_count(&m)
                )
            })
            .into_inner();
        return (result, monitor);
    }
    let policies = shared_policies(spec, policy);
    let (result, monitor) =
        run_fleet_parallel_inner(spec, &policies, threads, &Profiler::disabled(), Some(cfg));
    (
        result,
        monitor.expect("monitored parallel fleet returns a monitor"),
    )
}

fn run_fleet_parallel(
    spec: &FleetSpec,
    policies: &[&TrainedPolicy],
    threads: usize,
    prof: &Profiler,
) -> FleetResult {
    run_fleet_parallel_inner(spec, policies, threads, prof, None).0
}

fn run_fleet_parallel_inner(
    spec: &FleetSpec,
    policies: &[&TrainedPolicy],
    threads: usize,
    prof: &Profiler,
    monitor_cfg: Option<MonitorConfig>,
) -> (FleetResult, Option<FleetMonitor>) {
    check_policies(spec, policies);
    let n = spec.nodes;
    debug_assert!(threads >= 2 && threads <= n);
    let app_spec = AppSpec::get(spec.app);
    let group_of = spec.group_of();
    let servers: Vec<Server> = spec.group_configs().into_iter().map(Server::new).collect();
    let sp = prof.span("fleet.balance");
    let arrivals = fleet_arrivals(spec);
    let streams = split_arrivals(&arrivals, &spec.capacities(), spec.balancer);
    let assigned: Vec<u64> = streams.iter().map(|s| s.len() as u64).collect();
    drop(sp);

    let lead = policies[0];
    let mut coordinator = Coordinator::new(spec.groups(), policies);
    let opts = RunOptions {
        tick_ns: lead.deeppower.short_time,
        ..Default::default()
    };
    let long = lead.deeppower.long_time.max(1);
    let state_norms: Vec<StateNorm> = (0..n)
        .map(|i| policies[group_of[i]].deeppower.state_norm)
        .collect();

    // Epoch protocol, three barriers per epoch:
    //   workers observe → states rows   ── A ──
    //   leader: one batched pass → actions     ── B ──
    //   workers: set params, advance_until(t_stop), bump `done`  ── C ──
    //   everyone: done == n ? break : next epoch
    // `done` is monotone-cumulative (each node counted exactly once by
    // its owner, the epoch it finishes), so there is no reset step and
    // no reset race; every thread reads the same value after barrier C.
    let states = Mutex::new(Matrix::zeros(n, STATE_DIM));
    let actions = Mutex::new(vec![ControllerParams::default(); n]);
    let barrier = Barrier::new(threads + 1);
    let done = AtomicUsize::new(0);
    let slots: Vec<OnceLock<deeppower_simd_server::SimResult>> =
        (0..n).map(|_| OnceLock::new()).collect();
    let mon_slots: Vec<OnceLock<FleetMonitor>> = (0..threads).map(|_| OnceLock::new()).collect();
    let faults = spec.faults;
    let overload = spec.overload;
    let rtrace = spec.rtrace;

    let mut epochs = 0u64;
    std::thread::scope(|scope| {
        for w in 0..threads {
            let (servers, streams, group_of) = (&servers, &streams, &group_of);
            let (states, actions, state_norms) = (&states, &actions, &state_norms);
            let (barrier, done, slots, prof) = (&barrier, &done, &slots, prof);
            let (monitor_cfg, mon_slots) = (monitor_cfg.as_ref(), &mon_slots);
            scope.spawn(move || {
                // Everything a session touches is created on this
                // thread: sessions hold `Rc` cells and `&mut` governor
                // borrows and must never migrate.
                let owned: Vec<usize> = (w..n).step_by(threads).collect();
                // Worker-local monitor: nodes feed it inline through
                // their sinks; workers own disjoint node sets, so the
                // merged monitors equal the serial driver's.
                let worker_mon =
                    monitor_cfg.map(|cfg| Rc::new(RefCell::new(FleetMonitor::new(cfg.clone()))));
                let recs: Vec<Recorder> = match &worker_mon {
                    Some(m) => owned
                        .iter()
                        .map(|&i| {
                            Recorder::with_sink(Box::new(MonitorSink::new(Rc::clone(m), i as u64)))
                        })
                        .collect(),
                    None => vec![Recorder::disabled(); owned.len()],
                };
                let cells: Vec<Rc<Cell<ControllerParams>>> = owned
                    .iter()
                    .map(|_| Rc::new(Cell::new(ControllerParams::default())))
                    .collect();
                let mut govs: Vec<SharedParamsController> = cells
                    .iter()
                    .map(|c| SharedParamsController {
                        params: Rc::clone(c),
                    })
                    .collect();
                let mut sessions: Vec<Session<'_>> = govs
                    .iter_mut()
                    .zip(&owned)
                    .zip(&recs)
                    .map(|((gov, &i), rec)| {
                        servers[group_of[i]]
                            .session(
                                &streams[i],
                                gov as &mut dyn Governor,
                                node_opts(opts, faults, overload, rtrace, i),
                                rec,
                            )
                            .with_profiler(prof)
                    })
                    .collect();
                let mut observers: Vec<StateObserver> = owned
                    .iter()
                    .map(|&i| StateObserver::new(state_norms[i]))
                    .collect();
                let mut finished = vec![false; owned.len()];
                let mut local_epochs = 0u64;
                loop {
                    {
                        let mut st = states.lock().expect("fleet states lock");
                        for ((k, session), observer) in
                            sessions.iter().enumerate().zip(observers.iter_mut())
                        {
                            let s = session.with_view(|v| observer.observe(v));
                            st.set_row(owned[k], &s);
                        }
                    }
                    barrier.wait(); // A: every node's state row written
                    barrier.wait(); // B: leader published this epoch's actions
                    {
                        let acts = actions.lock().expect("fleet actions lock");
                        for (k, cell) in cells.iter().enumerate() {
                            cell.set(acts[owned[k]]);
                        }
                    }
                    local_epochs += 1;
                    let t_stop = local_epochs.saturating_mul(long);
                    let sp = prof.span("fleet.advance");
                    let mut newly = 0;
                    for (k, session) in sessions.iter_mut().enumerate() {
                        if session.advance_until(t_stop) && !finished[k] {
                            finished[k] = true;
                            newly += 1;
                        }
                    }
                    drop(sp);
                    if newly > 0 {
                        done.fetch_add(newly, Ordering::SeqCst);
                    }
                    barrier.wait(); // C: all completions visible
                    if done.load(Ordering::SeqCst) == n {
                        break;
                    }
                }
                for (k, session) in sessions.into_iter().enumerate() {
                    if slots[owned[k]].set(session.finish()).is_err() {
                        unreachable!("node {} produced two results", owned[k]);
                    }
                }
                if let Some(m) = worker_mon {
                    // The sessions (and their recorders) are gone, so
                    // this worker holds the only strong reference left.
                    drop(recs);
                    let mon = Rc::try_unwrap(m)
                        .unwrap_or_else(|m| {
                            unreachable!(
                                "worker {w} monitor still shared: {} refs",
                                Rc::strong_count(&m)
                            )
                        })
                        .into_inner();
                    if mon_slots[w].set(mon).is_err() {
                        unreachable!("worker {w} published two monitors");
                    }
                }
            });
        }

        // Leader: one grouped batched forward pass per profile group
        // per epoch; the coordinator reuses its per-group out/scratch
        // buffers so nothing here allocates in steady state.
        loop {
            barrier.wait(); // A
            {
                let sp = prof.span("fleet.batch_act");
                let st = states.lock().expect("fleet states lock");
                let mut acts = actions.lock().expect("fleet actions lock");
                coordinator.act(&st, &mut acts);
                drop(sp);
            }
            barrier.wait(); // B
            epochs += 1;
            barrier.wait(); // C
            if done.load(Ordering::SeqCst) == n {
                break;
            }
        }
    });

    let _sp = prof.span("fleet.merge");
    let results: Vec<_> = slots
        .into_iter()
        .map(|s| s.into_inner().expect("every node produces a result"))
        .collect();
    let monitor = monitor_cfg.map(|cfg| {
        let mut fleet_mon = FleetMonitor::new(cfg);
        for slot in mon_slots {
            fleet_mon.merge(
                slot.into_inner()
                    .expect("every worker publishes its monitor"),
            );
        }
        fleet_mon
    });
    (
        assemble(spec, &app_spec, epochs, &assigned, results),
        monitor,
    )
}

/// Fold per-node [`SimResult`]s into the fleet report. Fleet
/// percentiles come from the merged record set, not from averaging
/// per-node percentiles (which would understate the tail whenever one
/// node runs hot).
fn assemble(
    spec: &FleetSpec,
    app_spec: &AppSpec,
    epochs: u64,
    assigned: &[u64],
    results: Vec<deeppower_simd_server::SimResult>,
) -> FleetResult {
    let ms = |ns: u64| ns as f64 / MILLISECOND as f64;
    let mut merged: Vec<RequestRecord> = Vec::new();
    let mut per_node = Vec::with_capacity(results.len());
    let mut total_energy_j = 0.0;
    let mut total_power_w = 0.0;
    let (mut total_goodput, mut total_wasted, mut total_shed) = (0u64, 0u64, 0u64);
    // Fleet gauges fold through the per-key merge policy — "peak" keys
    // take the max across nodes, where a last-write fold would report
    // whichever node happened to merge last.
    let mut fleet_gauges: std::collections::BTreeMap<&'static str, f64> = Default::default();
    for (node, sim) in results.into_iter().enumerate() {
        merge_gauges(
            &mut fleet_gauges,
            &[("queue.peak_depth", sim.peak_queue_depth as f64)],
        );
        let s = &sim.stats;
        total_goodput += sim.goodput;
        total_wasted += sim.wasted;
        total_shed += sim.shed;
        per_node.push(NodeSummary {
            node,
            assigned: assigned[node],
            requests: s.count,
            goodput: sim.goodput,
            wasted: sim.wasted,
            shed: sim.shed,
            retries: sim.retries,
            energy_j: sim.energy_j,
            avg_power_w: sim.avg_power_w,
            p50_ms: ms(s.p50_ns),
            p95_ms: ms(s.p95_ns),
            p99_ms: ms(s.p99_ns),
            timeout_rate: s.timeout_rate(),
            freq_transitions: sim.freq_transitions,
            peak_queue_depth: sim.peak_queue_depth,
            profile: spec.profile_name(node),
        });
        total_energy_j += sim.energy_j;
        total_power_w += sim.avg_power_w;
        merged.extend(sim.records);
    }
    let fleet = LatencyStats::from_records(&merged);
    FleetResult {
        app: app_spec.name.to_string(),
        nodes: spec.nodes,
        balancer: spec.balancer.label().to_string(),
        seed: spec.seed,
        peak_load: spec.peak_load,
        duration_s: spec.duration_s,
        drl_epochs: epochs,
        total_requests: fleet.count,
        total_goodput,
        total_wasted,
        total_shed,
        total_energy_j,
        total_power_w,
        fleet_p50_ms: ms(fleet.p50_ns),
        fleet_p95_ms: ms(fleet.p95_ns),
        fleet_p99_ms: ms(fleet.p99_ns),
        fleet_timeout_rate: fleet.timeout_rate(),
        fleet_peak_queue_depth: fleet_gauges.get("queue.peak_depth").copied().unwrap_or(0.0) as u64,
        per_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(nodes: usize, balancer: BalancerPolicy) -> FleetSpec {
        // App::Masstree is the 8-thread app — cheapest node.
        FleetSpec::uniform(App::Masstree, nodes, balancer, 11, 0.4, 3)
    }

    #[test]
    fn fleet_conserves_requests_end_to_end() {
        for balancer in BalancerPolicy::all() {
            let spec = small_spec(3, balancer);
            let policy = untrained_policy(spec.app, 5);
            let generated = fleet_arrivals(&spec).len() as u64;
            let res = run_fleet(&spec, &policy);
            assert_eq!(
                res.total_requests, generated,
                "{balancer:?}: fleet dropped or duplicated requests"
            );
            for node in &res.per_node {
                assert_eq!(
                    node.requests, node.assigned,
                    "{balancer:?}: node {} completed {} of {} assigned",
                    node.node, node.requests, node.assigned
                );
            }
            assert!(res.drl_epochs > 0);
            assert!(res.total_energy_j > 0.0);
        }
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let spec = small_spec(2, BalancerPolicy::JoinShortestQueue);
        let policy = untrained_policy(spec.app, 7);
        let a = run_fleet(&spec, &policy).to_json();
        let b = run_fleet(&spec, &policy).to_json();
        assert_eq!(a, b, "same spec + policy must reproduce byte-identically");
    }

    #[test]
    fn batched_and_unbatched_fleets_agree() {
        // The whole point of the batched path: same floats, fewer
        // forward passes. Any drift here means act_batch is no longer
        // bit-faithful to act.
        let spec = small_spec(4, BalancerPolicy::RoundRobin);
        let policy = untrained_policy(spec.app, 3);
        let batched = run_fleet(&spec, &policy).to_json();
        let reference = run_fleet_reference(&spec, &policy).to_json();
        assert_eq!(batched, reference);
    }

    #[test]
    fn profiled_fleet_is_byte_identical_and_captures_epoch_spans() {
        let spec = small_spec(2, BalancerPolicy::JoinShortestQueue);
        let policy = untrained_policy(spec.app, 7);
        let plain = run_fleet(&spec, &policy).to_json();
        let prof = Profiler::enabled();
        let recs = vec![Recorder::disabled(); spec.nodes];
        let profiled = run_fleet_profiled(&spec, &policy, &recs, &prof).to_json();
        assert_eq!(plain, profiled, "profiling perturbed the fleet result");

        let rows = prof.phase_table();
        let count = |n: &str| rows.iter().find(|r| r.name == n).map_or(0, |r| r.count);
        assert_eq!(count("fleet.balance"), 1);
        assert_eq!(count("fleet.merge"), 1);
        assert!(count("fleet.batch_act") > 0);
        assert_eq!(count("fleet.batch_act"), count("fleet.advance"));
        // Node-engine spans nest inside fleet.advance/fleet.merge, so
        // they carry no root time of their own.
        let tick = rows.iter().find(|r| r.name == "engine.tick").unwrap();
        assert!(tick.count > 0);
        assert_eq!(tick.root_ns, 0);
    }

    #[test]
    fn threaded_fleet_is_byte_identical_at_any_thread_count() {
        // The acceptance bar for the parallel driver: not "close", not
        // "statistically equal" — the same bytes as the serial engine,
        // regardless of how nodes land on workers.
        let spec = small_spec(4, BalancerPolicy::JoinShortestQueue);
        let policy = untrained_policy(spec.app, 13);
        let serial = run_fleet(&spec, &policy).to_json();
        for threads in [1usize, 2, 8] {
            let parallel = run_fleet_threaded(&spec, &policy, threads).to_json();
            assert_eq!(serial, parallel, "--threads {threads} diverged from serial");
        }
    }

    #[test]
    fn uniform_fleet_reproduces_pinned_pre_profile_baseline() {
        // Result anchors captured on the homogeneous fleet *before* the
        // heterogeneous-profile refactor: exact bit patterns, not
        // tolerances. The refactor threads capacity weights through the
        // balancer and a coordinator through inference, all of which
        // must reduce to IEEE identities (×1.0, ÷1.0, one group) on a
        // uniform fleet — any drift here means a calibrated seed
        // re-rolled.
        let policy = untrained_policy(App::Masstree, 5);
        let cases: [(BalancerPolicy, u64, u64, [u64; 3]); 3] = [
            (
                BalancerPolicy::RoundRobin,
                0x407352ff40fbfd84,
                0x3fd172a38b8ae31d,
                [94343, 94343, 94342],
            ),
            (
                BalancerPolicy::JoinShortestQueue,
                0x407351e15a2df2e9,
                0x3fd1292817763e4b,
                [94716, 93509, 94803],
            ),
            (
                BalancerPolicy::PowerAware,
                0x407369d3c696804d,
                0x3fd18b86b15f88fd,
                [105933, 100718, 76377],
            ),
        ];
        for (balancer, energy_bits, p99_bits, assigned) in cases {
            let res = run_fleet(&small_spec(3, balancer), &policy);
            assert_eq!(res.total_requests, 283028, "{balancer:?}: trace drifted");
            assert_eq!(
                res.total_energy_j.to_bits(),
                energy_bits,
                "{balancer:?}: energy drifted from the pre-profile baseline"
            );
            assert_eq!(
                res.fleet_p99_ms.to_bits(),
                p99_bits,
                "{balancer:?}: p99 drifted from the pre-profile baseline"
            );
            let got: Vec<u64> = res.per_node.iter().map(|n| n.assigned).collect();
            assert_eq!(got, assigned, "{balancer:?}: balancer split drifted");
            if balancer == BalancerPolicy::RoundRobin {
                assert_eq!(res.drl_epochs, 4, "epoch grid drifted");
            }
        }
    }

    #[test]
    fn single_profile_fleet_is_byte_identical_to_uniform_spec() {
        // A one-profile fleet of paper-default nodes is the homogeneous
        // fleet, down to the last byte: same configs, same capacities,
        // same single coordinator group.
        let policy = untrained_policy(App::Masstree, 7);
        let uniform = small_spec(3, BalancerPolicy::JoinShortestQueue);
        let profiled = uniform
            .clone()
            .with_profiles(vec![NodeProfile::paper_default(8, 3)]);
        assert_eq!(profiled.nodes, 3);
        assert_eq!(
            run_fleet(&uniform, &policy).to_json(),
            run_fleet(&profiled, &policy).to_json(),
            "one-profile fleet diverged from the profile-free spec"
        );
    }

    #[test]
    fn mixed_profile_fleet_is_byte_identical_at_any_thread_count() {
        // The acceptance fleet: 4 one-core edge boxes (capped DVFS
        // range) next to 2 four-core nodes with big.LITTLE core caps.
        // Same bar as the homogeneous driver: byte-identity between the
        // serial and threaded drivers at any thread count.
        let spec = small_spec(0, BalancerPolicy::PowerAware).with_profiles(vec![
            NodeProfile {
                name: "edge-1c".into(),
                max_mhz: 1500,
                ..NodeProfile::paper_default(1, 4)
            },
            NodeProfile {
                name: "quad-biglittle".into(),
                little_cores: 2,
                little_max_mhz: 1100,
                ..NodeProfile::paper_default(4, 2)
            },
        ]);
        assert_eq!(spec.nodes, 6);
        let policy = untrained_policy(spec.app, 13);
        let serial = run_fleet(&spec, &policy);
        let generated = fleet_arrivals(&spec).len() as u64;
        assert_eq!(
            serial.total_requests, generated,
            "mixed fleet dropped or duplicated requests"
        );
        let names: Vec<&str> = serial.per_node.iter().map(|n| n.profile.as_str()).collect();
        assert_eq!(
            names,
            [
                "edge-1c",
                "edge-1c",
                "edge-1c",
                "edge-1c",
                "quad-biglittle",
                "quad-biglittle"
            ]
        );
        let serial = serial.to_json();
        for threads in [1usize, 2, 8] {
            let parallel = run_fleet_threaded(&spec, &policy, threads).to_json();
            assert_eq!(serial, parallel, "--threads {threads} diverged from serial");
        }
    }

    #[test]
    fn hier_fleet_runs_per_group_policies_byte_identically_threaded() {
        // Hierarchical control: each profile group steered by its own
        // policy, same serial/threaded byte-identity bar — and the
        // second group's weights must actually reach its nodes. The two
        // groups run identical paper-default hardware at moderate load
        // (the regime where controller params demonstrably change the
        // result), so any divergence from the shared-policy run can
        // only come from per-group policy attribution.
        let spec = small_spec(0, BalancerPolicy::JoinShortestQueue).with_profiles(vec![
            NodeProfile {
                name: "rack-a".into(),
                ..NodeProfile::paper_default(8, 2)
            },
            NodeProfile {
                name: "rack-b".into(),
                ..NodeProfile::paper_default(8, 2)
            },
        ]);
        let policies = vec![
            untrained_policy(spec.app, 17),
            untrained_policy(spec.app, 23),
        ];
        let serial = run_fleet_hier(&spec, &policies, 1);
        assert_eq!(serial.per_node.len(), 4);
        let serial_json = serial.to_json();
        for threads in [2usize, 4] {
            assert_eq!(
                serial_json,
                run_fleet_hier(&spec, &policies, threads).to_json(),
                "hier --threads {threads} diverged from serial"
            );
        }
        let shared = run_fleet(&spec, &policies[0]).to_json();
        assert_ne!(
            serial_json, shared,
            "second group's policy had no effect on the fleet"
        );
    }

    #[test]
    fn fleet_peak_queue_depth_merges_by_max_not_last_write() {
        // Satellite of the gauge-merge bugfix: the fleet-level peak is
        // the deepest any node got, not whichever node merged last.
        let spec = small_spec(3, BalancerPolicy::JoinShortestQueue);
        let res = run_fleet(&spec, &untrained_policy(spec.app, 5));
        let max = res
            .per_node
            .iter()
            .map(|n| n.peak_queue_depth)
            .max()
            .unwrap();
        assert!(max > 0, "no node ever queued");
        assert_eq!(res.fleet_peak_queue_depth, max);
    }

    #[test]
    fn profiled_threaded_fleet_is_byte_identical() {
        // Profiler span stacks are per-thread; turning profiling on
        // under the parallel driver must not change a single byte.
        let spec = small_spec(4, BalancerPolicy::RoundRobin);
        let policy = untrained_policy(spec.app, 5);
        let plain = run_fleet_threaded(&spec, &policy, 2).to_json();
        let prof = Profiler::enabled();
        let profiled = run_fleet_threaded_profiled(&spec, &policy, 2, &prof).to_json();
        assert_eq!(plain, profiled, "profiling perturbed the parallel fleet");
        let rows = prof.phase_table();
        let count = |n: &str| rows.iter().find(|r| r.name == n).map_or(0, |r| r.count);
        assert_eq!(count("fleet.balance"), 1);
        assert_eq!(count("fleet.merge"), 1);
        assert!(count("fleet.batch_act") > 0);
        // Two workers each open one advance span per epoch.
        assert_eq!(count("fleet.advance"), 2 * count("fleet.batch_act"));
    }

    #[test]
    fn overloaded_fleet_is_byte_identical_at_any_thread_count() {
        // Satellite of the overload work: the closed-loop client layer
        // (bounded queues, abandonment, seeded retries) must preserve
        // the serial/threaded byte-identity bar, and the retry RNG
        // streams must replay bit-identically alongside fault injection.
        let mut spec = small_spec(4, BalancerPolicy::JoinShortestQueue);
        spec.peak_load = 1.3; // past saturation so the overload layer engages
        spec.faults = FaultPlan {
            seed: 21,
            stall_period_ns: 1_000_000_000,
            stall_duration_ns: 300_000_000,
            ..FaultPlan::none()
        };
        spec.overload = OverloadPlan {
            seed: 9,
            queue_capacity: 32,
            client_timeout_ns: 5 * MILLISECOND,
            retry_prob: 0.6,
            max_attempts: 3,
            retry_backoff_ns: 2 * MILLISECOND,
            retry_jitter_ns: 500_000,
            ..OverloadPlan::none()
        };
        let policy = untrained_policy(spec.app, 13);
        let serial = run_fleet(&spec, &policy);
        assert!(
            serial.total_shed > 0 && serial.total_wasted > 0,
            "overload plan never engaged: shed={} wasted={}",
            serial.total_shed,
            serial.total_wasted
        );
        assert!(
            serial.per_node.iter().map(|n| n.retries).sum::<u64>() > 0,
            "no retries fired"
        );
        let serial = serial.to_json();
        for threads in [1usize, 2, 8] {
            let parallel = run_fleet_threaded(&spec, &policy, threads).to_json();
            assert_eq!(serial, parallel, "--threads {threads} diverged from serial");
        }
    }

    #[test]
    fn monitored_fleet_report_is_byte_identical_at_any_thread_count() {
        // Same bar as the threaded driver itself: the health report is
        // a pure function of the per-node event streams, so serial and
        // parallel monitored fleets must agree byte for byte — and
        // monitoring must not perturb the fleet result.
        use deeppower_telemetry::{MonitorConfig, SloSpec};
        let mut spec = small_spec(4, BalancerPolicy::JoinShortestQueue);
        spec.faults = FaultPlan {
            seed: 21,
            stall_period_ns: 1_000_000_000,
            stall_duration_ns: 300_000_000,
            ..FaultPlan::none()
        };
        let policy = untrained_policy(spec.app, 13);
        let cfg = MonitorConfig::with_slo(SloSpec::for_sla_ns("masstree", MILLISECOND));
        let plain = run_fleet(&spec, &policy).to_json();
        let (serial_res, serial_rep) = run_fleet_monitored(&spec, &policy, 1, cfg.clone());
        assert_eq!(
            plain,
            serial_res.to_json(),
            "monitoring perturbed the fleet result"
        );
        assert!(serial_rep.windows > 0, "monitor saw no window rollups");
        let serial_rep = serial_rep.to_json();
        for threads in [2usize, 8] {
            let (res, rep) = run_fleet_monitored(&spec, &policy, threads, cfg.clone());
            assert_eq!(plain, res.to_json(), "--threads {threads} result diverged");
            assert_eq!(
                serial_rep,
                rep.to_json(),
                "--threads {threads} health report diverged from serial"
            );
        }
    }

    #[test]
    fn faulted_fleet_trips_alerts_clean_fleet_stays_healthy() {
        // The health plane's acceptance bar: a fault-injected fleet
        // trips at least one burn-rate alert whose incident timeline
        // names the injected faults, while the identical fault-free
        // fleet produces zero alerts and zero violations.
        use deeppower_telemetry::{BurnRateRule, Event, MonitorConfig, SloSpec};
        let mut spec = FleetSpec::uniform(
            App::Masstree,
            3,
            BalancerPolicy::JoinShortestQueue,
            11,
            0.75,
            6,
        );
        let policy = untrained_policy(spec.app, 5);
        let mut slo = SloSpec::for_sla_ns("masstree", MILLISECOND);
        // Short trailing windows: the run is only six windows long.
        slo.rules = vec![BurnRateRule {
            long_windows: 2,
            short_windows: 1,
            max_burn: 2.0,
        }];
        let cfg = MonitorConfig::with_slo(slo);

        let (_, clean) = run_fleet_monitored(&spec, &policy, 1, cfg.clone());
        assert!(clean.healthy, "fault-free baseline must be healthy");
        assert!(clean.alerts.is_empty());
        assert_eq!(clean.outcomes.iter().map(|o| o.violations).sum::<u64>(), 0);

        spec.faults = FaultPlan {
            seed: 42,
            stall_period_ns: 1_000_000_000,
            stall_duration_ns: 700_000_000,
            ..FaultPlan::none()
        };
        let (_, faulted) = run_fleet_monitored(&spec, &policy, 1, cfg);
        assert!(!faulted.healthy);
        assert!(
            !faulted.alerts.is_empty(),
            "core stalls at 0.75 load must trip a burn-rate alert"
        );
        let alert = &faulted.alerts[0];
        assert!(
            !alert.timeline.is_empty(),
            "alert must carry incident context"
        );
        assert!(
            alert.timeline.iter().any(|e| e.kind == "core-stall"),
            "timeline must name the injected faults"
        );
        assert!(faulted
            .events
            .iter()
            .any(|e| matches!(e, Event::SloViolation(_))));
        assert!(faulted.outcomes.iter().any(|o| o.violations > 0));
    }

    #[test]
    fn traced_collapse_fleet_is_unperturbed_and_alerts_carry_exemplars() {
        // The tracing acceptance bar: a collapse-regime fleet run with
        // request tracing on is byte-identical to tracing off (fleet
        // results) and to itself at any thread count (traces + health
        // report), and the goodput alert's incident timeline names at
        // least one tail-exemplar trace id whose flight-recorded retry
        // chain shows the shed/backoff spans.
        use deeppower_telemetry::{BurnRateRule, MonitorConfig, SloSpec, SPAN_BACKOFF, SPAN_SHED};
        let sla = MILLISECOND;
        let mut spec = FleetSpec::uniform(
            App::Masstree,
            3,
            BalancerPolicy::JoinShortestQueue,
            11,
            0.9,
            6,
        );
        // The harness's `collapse` scenario knobs: tight queue, short
        // deadlines, near-certain retries.
        spec.overload = OverloadPlan {
            seed: 42,
            queue_capacity: 64,
            client_timeout_ns: 2 * sla,
            retry_prob: 0.95,
            max_attempts: 5,
            retry_backoff_ns: sla / 2,
            retry_jitter_ns: (sla / 4).max(1),
            ..OverloadPlan::none()
        };
        let policy = untrained_policy(spec.app, 5);
        // Goodput floor 0.9 with a single-window burn-rate rule at
        // 1.5: the alert fires the moment one window delivers less
        // than 85% useful completions — the collapse signature.
        let mut slo = SloSpec::for_sla_ns("masstree", sla);
        slo.goodput_ratio = 0.9;
        slo.rules = vec![BurnRateRule {
            long_windows: 1,
            short_windows: 1,
            max_burn: 1.5,
        }];
        let cfg = MonitorConfig::with_slo(slo);

        let (off_res, _) = run_fleet_monitored(&spec, &policy, 1, cfg.clone());

        spec.rtrace = TracePlan::sampled(0.05, 2, 7);
        let (on_res, mon) = run_fleet_monitored_full(&spec, &policy, 1, cfg.clone());
        assert_eq!(
            off_res.to_json(),
            on_res.to_json(),
            "tracing perturbed the fleet result"
        );

        let rep = mon.finish();
        assert!(
            rep.alerts.iter().any(|a| a.metric == "goodput"),
            "collapse plan must trip a goodput alert: {}",
            rep.render_incident_log()
        );
        let alert = rep.alerts.iter().find(|a| a.metric == "goodput").unwrap();
        let exemplar_entries: Vec<_> = alert
            .timeline
            .iter()
            .filter(|e| e.kind == "tail-exemplar")
            .collect();
        assert!(
            !exemplar_entries.is_empty(),
            "goodput alert timeline carries no tail-exemplar trace ids"
        );
        // Every exemplar id the timeline names resolves to a flight-
        // recorded trace, and at least one is a retry chain whose
        // spans show the shed → backoff ladder.
        let flight = mon.flight();
        assert!(!flight.is_empty(), "flight recorder captured nothing");
        let traces = flight.all();
        let named: Vec<&deeppower_telemetry::RequestTrace> = exemplar_entries
            .iter()
            .flat_map(|e| {
                e.detail
                    .trim_start_matches("trace ids [")
                    .trim_end_matches(']')
                    .split(", ")
                    .filter_map(|s| s.parse::<u64>().ok())
                    .collect::<Vec<_>>()
            })
            .filter_map(|id| {
                traces
                    .iter()
                    .find(|(_, _, t)| t.client == id)
                    .map(|(_, _, t)| *t)
            })
            .collect();
        assert!(
            !named.is_empty(),
            "no timeline exemplar id resolves to a flight-recorded trace"
        );
        assert!(
            traces.iter().any(|(_, _, t)| t.attempts.len() > 1
                && t.span_total_ns(SPAN_BACKOFF) > 0
                && t.spans_named(SPAN_SHED).count() > 0),
            "flight recorder holds no retry chain with shed + backoff spans"
        );

        // Thread-count identity: results, health report, and the
        // flight-recorded traces themselves.
        let serial_rep = rep.to_json();
        for threads in [2usize, 8] {
            let (res_t, mon_t) = run_fleet_monitored_full(&spec, &policy, threads, cfg.clone());
            assert_eq!(
                on_res.to_json(),
                res_t.to_json(),
                "--threads {threads} result diverged"
            );
            assert_eq!(
                mon.flight().all(),
                mon_t.flight().all(),
                "--threads {threads} traces diverged from serial"
            );
            assert_eq!(
                serial_rep,
                mon_t.finish().to_json(),
                "--threads {threads} health report diverged"
            );
        }
    }

    #[test]
    fn per_node_recorders_capture_disjoint_streams() {
        let spec = small_spec(2, BalancerPolicy::RoundRobin);
        let policy = untrained_policy(spec.app, 9);
        let recs = vec![Recorder::ring(1 << 14), Recorder::ring(1 << 14)];
        let res = run_fleet_recorded(&spec, &policy, &recs);
        let events: Vec<_> = recs.iter().map(|r| r.drain_events()).collect();
        assert!(
            events.iter().all(|e| !e.is_empty()),
            "both nodes must emit telemetry"
        );
        // Node streams are per-node: each stream's dispatch events
        // reference only requests the balancer routed to that node.
        assert!(res.per_node.iter().all(|n| n.requests > 0));
    }
}
