//! Trace persistence: save and load RPS traces as CSV.
//!
//! The paper drives its evaluation with a *recorded* trace (the Alibaba
//! e-commerce search benchmark). This module lets users replay recorded
//! traces of their own — one `seconds,rps` row per slot — and round-trip
//! the synthetic generator's output for archival alongside experiment
//! results.

use crate::diurnal::DiurnalTrace;
use deeppower_simd_server::{Nanos, SECOND};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Write a trace as `time_s,rps` CSV (with header).
pub fn save_trace_csv(trace: &DiurnalTrace, path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "time_s,rps")?;
    let slot_s = trace.slot_ns() as f64 / SECOND as f64;
    for (i, &rps) in trace.samples().iter().enumerate() {
        writeln!(f, "{},{}", i as f64 * slot_s, rps)?;
    }
    Ok(())
}

/// Load a trace from `time_s,rps` CSV. Slots must be uniformly spaced;
/// the slot width is inferred from the first two rows (a single-row file
/// gets a 1 s slot).
pub fn load_trace_csv(path: &Path) -> std::io::Result<DiurnalTrace> {
    let f = std::fs::File::open(path)?;
    let reader = BufReader::new(f);
    let mut times = Vec::new();
    let mut rps = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || (lineno == 0 && line.starts_with("time")) {
            continue;
        }
        let mut parts = line.split(',');
        let parse_err = |what: &str| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: bad {what}: {line}", lineno + 1),
            )
        };
        let t: f64 = parts
            .next()
            .ok_or_else(|| parse_err("row"))?
            .trim()
            .parse()
            .map_err(|_| parse_err("time"))?;
        let r: f64 = parts
            .next()
            .ok_or_else(|| parse_err("row"))?
            .trim()
            .parse()
            .map_err(|_| parse_err("rps"))?;
        if r < 0.0 {
            return Err(parse_err("rps (negative)"));
        }
        times.push(t);
        rps.push(r);
    }
    if rps.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "trace file has no data rows",
        ));
    }
    let slot_ns: Nanos = if times.len() >= 2 {
        let dt = times[1] - times[0];
        if dt <= 0.0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "non-increasing timestamps",
            ));
        }
        // Verify uniform spacing within 1 %.
        for w in times.windows(2) {
            if ((w[1] - w[0]) - dt).abs() > dt * 0.01 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "non-uniform slot spacing",
                ));
            }
        }
        (dt * SECOND as f64).round() as Nanos
    } else {
        SECOND
    };
    Ok(DiurnalTrace::from_samples(slot_ns, rps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diurnal::DiurnalConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("deeppower-trace-{name}.csv"))
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = DiurnalTrace::generate(&DiurnalConfig::default(), 5);
        let path = tmp("roundtrip");
        save_trace_csv(&trace, &path).unwrap();
        let loaded = load_trace_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.n_slots(), trace.n_slots());
        assert_eq!(loaded.slot_ns(), trace.slot_ns());
        for (a, b) in trace.samples().iter().zip(loaded.samples()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_malformed_files() {
        let path = tmp("bad");
        std::fs::write(&path, "time_s,rps\n0,100\n1,not-a-number\n").unwrap();
        assert!(load_trace_csv(&path).is_err());
        std::fs::write(&path, "time_s,rps\n").unwrap();
        assert!(load_trace_csv(&path).is_err());
        std::fs::write(&path, "time_s,rps\n0,100\n1,200\n5,300\n").unwrap();
        assert!(
            load_trace_csv(&path).is_err(),
            "non-uniform spacing must fail"
        );
        std::fs::write(&path, "time_s,rps\n0,100\n1,-5\n").unwrap();
        assert!(load_trace_csv(&path).is_err(), "negative rps must fail");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_row_defaults_to_one_second_slots() {
        let path = tmp("single");
        std::fs::write(&path, "time_s,rps\n0,250\n").unwrap();
        let t = load_trace_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(t.n_slots(), 1);
        assert_eq!(t.slot_ns(), SECOND);
        assert_eq!(t.rps_at(0), 250.0);
    }
}
