//! Probability distributions used by the workload models.
//!
//! Implemented from first principles on top of `rand`'s uniform primitives
//! (the `rand_distr` crate is outside the sanctioned offline dependency
//! set). All samplers take the RNG explicitly for determinism.

use rand::Rng;

/// Draw one standard-normal sample (Box–Muller).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal distribution parameterized by the *target mean* and the
/// shape `sigma` (σ of the underlying normal).
///
/// `mu` is derived so that `E[X] = mean`: `mu = ln(mean) − σ²/2`.
/// The heavier `sigma`, the longer the tail — Moses-like workloads use
/// σ ≈ 1, Img-dnn-like nearly deterministic ones σ ≈ 0.1.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    pub sigma: f64,
}

impl LogNormal {
    pub fn from_mean(mean: f64, sigma: f64) -> Self {
        assert!(mean > 0.0, "log-normal mean must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self {
            mu: mean.ln() - sigma * sigma / 2.0,
            sigma,
        }
    }

    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Median `exp(mu)` — useful to sanity-check skew.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Analytic quantile: `exp(mu + σ · Φ⁻¹(q))`.
    pub fn quantile(&self, q: f64) -> f64 {
        (self.mu + self.sigma * probit(q)).exp()
    }

    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Pareto (type I) distribution with scale `x_min` and shape `alpha`.
/// Used for optional extra-heavy tails in stress workloads.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    pub x_min: f64,
    pub alpha: f64,
}

impl Pareto {
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(
            x_min > 0.0 && alpha > 0.0,
            "Pareto parameters must be positive"
        );
        Self { x_min, alpha }
    }

    /// Mean is finite only for `alpha > 1`.
    pub fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.x_min / (self.alpha - 1.0))
    }

    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
/// Inter-arrival times of a Poisson process.
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    pub lambda: f64,
}

impl Exponential {
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "rate must be positive");
        Self { lambda }
    }

    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random::<f64>();
        -u.ln() / self.lambda
    }
}

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |ε| < 1.15e-9 — far below anything the calibration tests need).
pub fn probit(q: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&q) && q > 0.0,
        "quantile must be in (0,1)"
    );
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if q < p_low {
        let r = (-2.0 * q.ln()).sqrt();
        (((((C[0] * r + C[1]) * r + C[2]) * r + C[3]) * r + C[4]) * r + C[5])
            / ((((D[0] * r + D[1]) * r + D[2]) * r + D[3]) * r + 1.0)
    } else if q <= 1.0 - p_low {
        let r = q - 0.5;
        let s = r * r;
        (((((A[0] * s + A[1]) * s + A[2]) * s + A[3]) * s + A[4]) * s + A[5]) * r
            / (((((B[0] * s + B[1]) * s + B[2]) * s + B[3]) * s + B[4]) * s + 1.0)
    } else {
        -probit(1.0 - q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn lognormal_empirical_mean_matches_target() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = LogNormal::from_mean(5.0, 0.8);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() / 5.0 < 0.02, "mean {mean}");
    }

    #[test]
    fn lognormal_quantile_matches_empirical() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LogNormal::from_mean(1.0, 0.6);
        let mut samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let emp_p99 = samples[(0.99 * samples.len() as f64) as usize];
        let ana_p99 = d.quantile(0.99);
        assert!(
            (emp_p99 - ana_p99).abs() / ana_p99 < 0.05,
            "{emp_p99} vs {ana_p99}"
        );
    }

    #[test]
    fn lognormal_skew_grows_with_sigma() {
        // p99/mean ratio grows with sigma (the long tail of Fig. 1).
        let narrow = LogNormal::from_mean(1.0, 0.2);
        let wide = LogNormal::from_mean(1.0, 1.0);
        assert!(wide.quantile(0.99) / wide.mean() > narrow.quantile(0.99) / narrow.mean());
        // Median below mean for skewed distribution.
        assert!(wide.median() < wide.mean());
    }

    #[test]
    fn pareto_tail_and_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Pareto::new(1.0, 2.5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x >= 1.0));
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let expected = d.mean().unwrap();
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "{mean} vs {expected}"
        );
        assert!(Pareto::new(1.0, 0.9).mean().is_none());
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Exponential::new(0.25);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn probit_known_values() {
        assert!(probit(0.5).abs() < 1e-8);
        assert!((probit(0.975) - 1.959964).abs() < 1e-4);
        assert!((probit(0.99) - 2.326348).abs() < 1e-4);
        assert!((probit(0.01) + 2.326348).abs() < 1e-4);
    }

    #[test]
    fn samplers_deterministic_under_seed() {
        let d = LogNormal::from_mean(2.0, 0.5);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
