//! The five Tailbench applications, as service-time models.
//!
//! Table 3 of the paper fixes each application's SLA and reports its p99
//! latency at 20/50/70 % load; Fig. 1 shows the long-tailed service-time
//! CDFs. Each [`AppSpec`] is calibrated so the *intrinsic* (uncontended,
//! reference-frequency) distribution reproduces those anchors:
//!
//! | app      | SLA    | intrinsic p99 (model) | Table 3 p99 @20 % |
//! |----------|--------|-----------------------|-------------------|
//! | Xapian   | 8 ms   | ≈2.78 ms              | 2.742 ms          |
//! | Masstree | 1 ms   | ≈0.21 ms              | 0.191 ms          |
//! | Moses    | 120 ms | ≈31 ms                | 30.99 ms          |
//! | Sphinx   | 4 s    | ≈1.75 s               | 1.76 s            |
//! | Img-dnn  | 5 ms   | ≈2.3 ms               | 2.302 ms          |
//!
//! A request's true service time is `intercept + body · noise` where
//! `body` is log-normal (driven by the observable input size) and `noise`
//! is log-normal *hidden* variance the feature cannot explain — data
//! dependence, cache state, branchy decoding. The split matters: a linear
//! model over the feature is a reasonable predictor at fixed load (the
//! ReTail premise) but the heavy tail is only partly predictable, which is
//! exactly why prediction-based DVFS must over-provision while DeepPower's
//! feature-free ramp does not (§1, §4.2). The *combined* distribution
//! (σ² = σ_obs² + σ_hidden²) is what Table 3 / Fig. 1 calibrate.

use crate::distributions::LogNormal;
use deeppower_simd_server::{Nanos, Request, MILLISECOND, SECOND};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The five Tailbench applications of §5.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum App {
    /// Open-source search engine over English Wikipedia.
    Xapian,
    /// High-performance key-value store (mycsb-a, 90 % PUT / 10 % GET).
    Masstree,
    /// Statistical machine translation (Spanish articles).
    Moses,
    /// Speech recognition (CMU AN4).
    Sphinx,
    /// DNN image recognition (MNIST).
    ImgDnn,
}

impl App {
    pub const ALL: [App; 5] = [
        App::Xapian,
        App::Masstree,
        App::Moses,
        App::Sphinx,
        App::ImgDnn,
    ];
}

/// Everything the simulator needs to generate one application's requests.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AppSpec {
    pub app: App,
    pub name: &'static str,
    /// Latency SLA (Table 3).
    pub sla: Nanos,
    /// Worker threads on socket 0 (20, except 8 for Masstree — §5.2
    /// footnote on its memory overhead).
    pub n_threads: usize,
    /// Mean intrinsic service time at the reference frequency, ns.
    pub mean_service_ns: f64,
    /// Log-normal shape of the *observable* body component.
    pub sigma: f64,
    /// Fraction of the mean that is fixed per-request overhead.
    pub intercept_frac: f64,
    /// Log-normal shape of the *hidden* multiplicative component — tail
    /// variance no observable feature explains. Combined tail shape is
    /// `sqrt(sigma² + noise_sigma²)` (Fig. 1's heaviness).
    pub noise_sigma: f64,
    /// Fraction of work that scales with frequency (rest memory-bound).
    pub freq_sensitivity: f32,
}

impl AppSpec {
    pub fn get(app: App) -> Self {
        match app {
            App::Xapian => Self {
                app,
                name: "xapian",
                sla: 8 * MILLISECOND,
                n_threads: 20,
                mean_service_ns: 0.9 * MILLISECOND as f64,
                sigma: 0.35,
                intercept_frac: 0.05,
                noise_sigma: 0.42,
                freq_sensitivity: 0.90,
            },
            App::Masstree => Self {
                app,
                name: "masstree",
                sla: MILLISECOND,
                n_threads: 8,
                mean_service_ns: 0.085 * MILLISECOND as f64,
                sigma: 0.30,
                intercept_frac: 0.10,
                noise_sigma: 0.30,
                freq_sensitivity: 0.55, // KV store: heavily memory-bound
            },
            App::Moses => Self {
                app,
                name: "moses",
                sla: 120 * MILLISECOND,
                n_threads: 20,
                mean_service_ns: 5.0 * MILLISECOND as f64,
                sigma: 0.55, // observable part of the ~8× tail of Fig. 1
                intercept_frac: 0.04,
                noise_sigma: 0.83, // most of Moses' tail is unpredictable
                freq_sensitivity: 0.85,
            },
            App::Sphinx => Self {
                app,
                name: "sphinx",
                sla: 4 * SECOND,
                n_threads: 20,
                mean_service_ns: 0.62 * SECOND as f64,
                sigma: 0.40,
                intercept_frac: 0.02,
                noise_sigma: 0.30,
                freq_sensitivity: 0.95, // compute-bound decoding
            },
            App::ImgDnn => Self {
                app,
                name: "img-dnn",
                sla: 5 * MILLISECOND,
                n_threads: 20,
                mean_service_ns: 1.75 * MILLISECOND as f64,
                sigma: 0.10, // near-deterministic inference cost
                intercept_frac: 0.05,
                noise_sigma: 0.07,
                freq_sensitivity: 0.95,
            },
        }
    }

    pub fn all() -> Vec<Self> {
        App::ALL.iter().map(|&a| Self::get(a)).collect()
    }

    /// Mean of the variable (log-normal) body component.
    pub fn body_mean_ns(&self) -> f64 {
        self.mean_service_ns * (1.0 - self.intercept_frac)
    }

    /// Fixed per-request overhead component.
    pub fn intercept_ns(&self) -> f64 {
        self.mean_service_ns * self.intercept_frac
    }

    /// Combined log-normal shape of `body · noise` (independent log-normals
    /// multiply: variances of the underlying normals add).
    pub fn combined_sigma(&self) -> f64 {
        (self.sigma * self.sigma + self.noise_sigma * self.noise_sigma).sqrt()
    }

    /// Analytic p99 of the intrinsic service-time distribution — the
    /// Table 3 calibration anchor.
    pub fn intrinsic_p99_ns(&self) -> f64 {
        let total = LogNormal::from_mean(self.body_mean_ns(), self.combined_sigma());
        self.intercept_ns() + total.quantile(0.99)
    }

    /// Maximum sustainable request rate at the reference frequency with
    /// all worker threads busy and no contention: `threads / E[service]`.
    pub fn capacity_rps(&self) -> f64 {
        self.n_threads as f64 / (self.mean_service_ns * 1e-9)
    }

    /// Request rate corresponding to a utilization `load` ∈ (0, 1].
    pub fn rps_for_load(&self, load: f64) -> f64 {
        assert!(load > 0.0, "load must be positive");
        load * self.capacity_rps()
    }

    /// Draw one request arriving at `arrival`. The observable feature is
    /// the normalized input size (`body / E[body]`); the true work also
    /// carries the hidden multiplicative noise.
    pub fn sample_request<R: Rng>(&self, rng: &mut R, id: u64, arrival: Nanos) -> Request {
        let body_dist = LogNormal::from_mean(self.body_mean_ns(), self.sigma);
        let body = body_dist.sample(rng);
        let noise = if self.noise_sigma > 0.0 {
            LogNormal::from_mean(1.0, self.noise_sigma).sample(rng)
        } else {
            1.0
        };
        let work = self.intercept_ns() + body * noise;
        let size_feature = (body / self.body_mean_ns()) as f32;
        Request {
            id,
            client_id: id,
            attempt: 0,
            arrival,
            first_arrival: arrival,
            work_ref_ns: work.max(1.0) as Nanos,
            freq_sensitivity: self.freq_sensitivity,
            sla: self.sla,
            features: vec![size_feature],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn table3_slas() {
        assert_eq!(AppSpec::get(App::Xapian).sla, 8 * MILLISECOND);
        assert_eq!(AppSpec::get(App::Masstree).sla, MILLISECOND);
        assert_eq!(AppSpec::get(App::Moses).sla, 120 * MILLISECOND);
        assert_eq!(AppSpec::get(App::Sphinx).sla, 4 * SECOND);
        assert_eq!(AppSpec::get(App::ImgDnn).sla, 5 * MILLISECOND);
    }

    #[test]
    fn masstree_uses_eight_threads_others_twenty() {
        for spec in AppSpec::all() {
            if spec.app == App::Masstree {
                assert_eq!(spec.n_threads, 8);
            } else {
                assert_eq!(spec.n_threads, 20);
            }
        }
    }

    #[test]
    fn intrinsic_p99_matches_table3_low_load_anchor() {
        // (app, Table 3 p99 @ 20 % load in ms, tolerance fraction)
        let anchors = [
            (App::Xapian, 2.742, 0.15),
            (App::Masstree, 0.191, 0.15),
            (App::Moses, 30.99, 0.15),
            (App::Sphinx, 1759.8, 0.15),
            (App::ImgDnn, 2.302, 0.15),
        ];
        for (app, p99_ms, tol) in anchors {
            let spec = AppSpec::get(app);
            let model = spec.intrinsic_p99_ns() / MILLISECOND as f64;
            assert!(
                (model - p99_ms).abs() / p99_ms < tol,
                "{}: model p99 {model} ms vs paper {p99_ms} ms",
                spec.name
            );
        }
    }

    #[test]
    fn intrinsic_p99_below_sla() {
        // Headroom exists at low load for every app (otherwise no power
        // management scheme could meet the SLA).
        for spec in AppSpec::all() {
            assert!(
                spec.intrinsic_p99_ns() < spec.sla as f64,
                "{} p99 exceeds SLA",
                spec.name
            );
        }
    }

    #[test]
    fn empirical_mean_service_time_matches_spec() {
        let mut rng = StdRng::seed_from_u64(5);
        for spec in AppSpec::all() {
            let n = 20_000;
            let mean: f64 = (0..n)
                .map(|i| spec.sample_request(&mut rng, i, 0).work_ref_ns as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - spec.mean_service_ns).abs() / spec.mean_service_ns < 0.05,
                "{}: empirical mean {mean} vs spec {}",
                spec.name,
                spec.mean_service_ns
            );
        }
    }

    #[test]
    fn moses_tail_is_heaviest_imgdnn_lightest() {
        // Fig. 1: Moses p99/mean ≈ 8×; Img-dnn is nearly flat.
        let ratio = |app| {
            let s = AppSpec::get(app);
            s.intrinsic_p99_ns() / s.mean_service_ns
        };
        assert!(ratio(App::Moses) > 5.0);
        assert!(ratio(App::ImgDnn) < 1.6);
        assert!(ratio(App::Moses) > ratio(App::Xapian));
        assert!(ratio(App::Xapian) > ratio(App::ImgDnn));
    }

    #[test]
    fn feature_correlates_with_work() {
        let mut rng = StdRng::seed_from_u64(6);
        let spec = AppSpec::get(App::Xapian);
        let reqs: Vec<Request> = (0..5000)
            .map(|i| spec.sample_request(&mut rng, i, 0))
            .collect();
        // Pearson correlation between feature and true work should be high.
        let xs: Vec<f64> = reqs.iter().map(|r| r.features[0] as f64).collect();
        let ys: Vec<f64> = reqs.iter().map(|r| r.work_ref_ns as f64).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>();
        let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum::<f64>();
        let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum::<f64>();
        let r = cov / (vx.sqrt() * vy.sqrt());
        // Positive and meaningful, but far from perfect — the hidden
        // variance is what defeats prediction-based baselines.
        assert!((0.4..0.9).contains(&r), "feature-work correlation {r}");
    }

    #[test]
    fn capacity_and_load_relationship() {
        let spec = AppSpec::get(App::Xapian);
        // 20 threads / 0.9 ms ≈ 22.2k RPS.
        assert!((spec.capacity_rps() - 22_222.0).abs() < 100.0);
        assert!((spec.rps_for_load(0.5) - spec.capacity_rps() / 2.0).abs() < 1e-6);
    }

    #[test]
    fn requests_are_deterministic_per_seed() {
        let spec = AppSpec::get(App::Moses);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for i in 0..20 {
            assert_eq!(
                spec.sample_request(&mut a, i, 0),
                spec.sample_request(&mut b, i, 0)
            );
        }
    }
}
