//! Diurnal RPS trace generation — the stand-in for the Alibaba e-commerce
//! search benchmark trace of Fig. 6.
//!
//! §4.3/§5.2: "RPS exhibits a diurnal pattern … we utilize the E-commerce
//! search benchmark, which records RPS of an e-commerce search system
//! during one month … We downsample the time series to shorten the period
//! (360 s by default) and multiply the RPS by a factor to make the tail
//! latency close to SLA when running without frequency scaling."
//!
//! The generator reproduces those qualitative features deterministically:
//! a dominant daily harmonic, a secondary half-day harmonic (lunch/evening
//! peaks), occasional flash-crowd bursts, and AR(1) jitter.

use crate::distributions::standard_normal;
use deeppower_simd_server::{Nanos, SECOND};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Trace generation parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DiurnalConfig {
    /// Downsampled period length in seconds (paper default: 360 s).
    pub period_s: u64,
    /// Sampling slot width in seconds.
    pub slot_s: u64,
    /// Mean RPS around which the pattern oscillates.
    pub base_rps: f64,
    /// Relative amplitude of the daily harmonic (0.5 ⇒ ±50 %).
    pub daily_amplitude: f64,
    /// Relative amplitude of the half-day harmonic.
    pub half_day_amplitude: f64,
    /// Per-slot probability of starting a flash-crowd burst.
    pub burst_prob: f64,
    /// Burst magnitude relative to base (e.g. 0.6 ⇒ +60 %).
    pub burst_magnitude: f64,
    /// Burst duration in slots.
    pub burst_slots: u64,
    /// AR(1) jitter: correlation coefficient and innovation scale
    /// (relative to base).
    pub jitter_rho: f64,
    pub jitter_scale: f64,
}

impl Default for DiurnalConfig {
    fn default() -> Self {
        Self {
            period_s: 360,
            slot_s: 1,
            base_rps: 1000.0,
            daily_amplitude: 0.45,
            half_day_amplitude: 0.15,
            burst_prob: 0.01,
            burst_magnitude: 0.5,
            burst_slots: 8,
            jitter_rho: 0.8,
            jitter_scale: 0.05,
        }
    }
}

/// A concrete RPS time series with linear interpolation between slots.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiurnalTrace {
    slot_ns: Nanos,
    rps: Vec<f64>,
}

impl DiurnalTrace {
    /// Generate a trace from config and seed (fully deterministic).
    pub fn generate(cfg: &DiurnalConfig, seed: u64) -> Self {
        assert!(
            cfg.period_s > 0 && cfg.slot_s > 0,
            "period and slot must be positive"
        );
        assert!(cfg.base_rps > 0.0, "base rps must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let n_slots = (cfg.period_s / cfg.slot_s).max(1) as usize;
        let mut rps = Vec::with_capacity(n_slots);
        let mut jitter = 0.0f64;
        let mut burst_left = 0u64;
        for i in 0..n_slots {
            let phase = i as f64 / n_slots as f64 * std::f64::consts::TAU;
            // Daily harmonic peaks mid-period ("afternoon"), trough at the
            // edges ("early morning").
            let daily = cfg.daily_amplitude * (phase - std::f64::consts::FRAC_PI_2).sin();
            let half_day = cfg.half_day_amplitude * (2.0 * phase).sin();
            jitter = cfg.jitter_rho * jitter
                + cfg.jitter_scale
                    * standard_normal(&mut rng)
                    * (1.0 - cfg.jitter_rho.powi(2)).sqrt();
            if burst_left == 0 && rng.random::<f64>() < cfg.burst_prob {
                burst_left = cfg.burst_slots;
            }
            let burst = if burst_left > 0 {
                burst_left -= 1;
                cfg.burst_magnitude
            } else {
                0.0
            };
            let v = cfg.base_rps * (1.0 + daily + half_day + jitter + burst);
            rps.push(v.max(cfg.base_rps * 0.05));
        }
        Self {
            slot_ns: cfg.slot_s * SECOND,
            rps,
        }
    }

    /// Build directly from samples (e.g. replaying a recorded trace).
    pub fn from_samples(slot_ns: Nanos, rps: Vec<f64>) -> Self {
        assert!(!rps.is_empty(), "trace needs at least one slot");
        assert!(rps.iter().all(|&x| x >= 0.0), "negative RPS");
        Self { slot_ns, rps }
    }

    /// Total trace duration.
    pub fn duration_ns(&self) -> Nanos {
        self.slot_ns * self.rps.len() as Nanos
    }

    pub fn n_slots(&self) -> usize {
        self.rps.len()
    }

    pub fn slot_ns(&self) -> Nanos {
        self.slot_ns
    }

    /// Instantaneous RPS at `t` (linear interpolation; clamps past the end).
    pub fn rps_at(&self, t: Nanos) -> f64 {
        let pos = t as f64 / self.slot_ns as f64;
        let i = pos.floor() as usize;
        if i + 1 >= self.rps.len() {
            return *self.rps.last().unwrap();
        }
        let frac = pos - i as f64;
        self.rps[i] * (1.0 - frac) + self.rps[i + 1] * frac
    }

    /// Maximum slot RPS (the thinning bound for arrival generation).
    pub fn max_rps(&self) -> f64 {
        self.rps.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean slot RPS.
    pub fn mean_rps(&self) -> f64 {
        self.rps.iter().sum::<f64>() / self.rps.len() as f64
    }

    /// Multiply the whole trace by `factor` (the paper scales the trace so
    /// unmanaged tail latency lands near the SLA).
    pub fn scale(&mut self, factor: f64) {
        assert!(factor > 0.0, "scale factor must be positive");
        for r in &mut self.rps {
            *r *= factor;
        }
    }

    /// Rescale so the *peak* equals `peak_rps`.
    pub fn scale_peak_to(&mut self, peak_rps: f64) {
        let max = self.max_rps();
        if max > 0.0 {
            self.scale(peak_rps / max);
        }
    }

    /// Raw slot values (reporting / Fig. 6).
    pub fn samples(&self) -> &[f64] {
        &self.rps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = DiurnalConfig::default();
        let a = DiurnalTrace::generate(&cfg, 7);
        let b = DiurnalTrace::generate(&cfg, 7);
        assert_eq!(a.samples(), b.samples());
        let c = DiurnalTrace::generate(&cfg, 8);
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn trace_has_meaningful_diurnal_swing() {
        let trace = DiurnalTrace::generate(&DiurnalConfig::default(), 1);
        let max = trace.max_rps();
        let min = trace
            .samples()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(max / min > 1.8, "swing too small: {min}..{max}");
        assert!(min > 0.0);
    }

    #[test]
    fn peak_is_midway_not_at_edges() {
        // "requests in the afternoon are generally more than in the early
        // morning" — peak should fall in the middle half of the period.
        let trace = DiurnalTrace::generate(
            &DiurnalConfig {
                burst_prob: 0.0,
                jitter_scale: 0.0,
                ..Default::default()
            },
            3,
        );
        let n = trace.n_slots();
        let (peak_idx, _) = trace
            .samples()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!(
            peak_idx > n / 4 && peak_idx < 3 * n / 4,
            "peak at {peak_idx}/{n}"
        );
    }

    #[test]
    fn interpolation_between_slots() {
        let trace = DiurnalTrace::from_samples(SECOND, vec![100.0, 200.0, 100.0]);
        assert_eq!(trace.rps_at(0), 100.0);
        assert_eq!(trace.rps_at(SECOND / 2), 150.0);
        assert_eq!(trace.rps_at(SECOND), 200.0);
        // Clamps past the end.
        assert_eq!(trace.rps_at(10 * SECOND), 100.0);
    }

    #[test]
    fn scaling_operations() {
        let mut trace = DiurnalTrace::from_samples(SECOND, vec![100.0, 300.0]);
        trace.scale(2.0);
        assert_eq!(trace.samples(), &[200.0, 600.0]);
        trace.scale_peak_to(1200.0);
        assert_eq!(trace.max_rps(), 1200.0);
        assert_eq!(trace.samples()[0], 400.0);
    }

    #[test]
    fn duration_and_mean() {
        let cfg = DiurnalConfig {
            period_s: 360,
            slot_s: 1,
            ..Default::default()
        };
        let trace = DiurnalTrace::generate(&cfg, 2);
        assert_eq!(trace.duration_ns(), 360 * SECOND);
        assert_eq!(trace.n_slots(), 360);
        let mean = trace.mean_rps();
        assert!((mean / cfg.base_rps - 1.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    fn bursts_create_local_spikes() {
        let no_burst = DiurnalTrace::generate(
            &DiurnalConfig {
                burst_prob: 0.0,
                jitter_scale: 0.0,
                ..Default::default()
            },
            11,
        );
        let bursty = DiurnalTrace::generate(
            &DiurnalConfig {
                burst_prob: 0.05,
                burst_magnitude: 1.0,
                jitter_scale: 0.0,
                ..Default::default()
            },
            11,
        );
        assert!(bursty.max_rps() > no_burst.max_rps() * 1.3);
    }
}
