//! # deeppower-workload
//!
//! Synthetic stand-ins for the paper's workloads (§5.1–§5.2):
//!
//! * **Applications** — the five Tailbench latency-critical applications
//!   (Xapian, Masstree, Moses, Sphinx, Img-dnn) are modeled as per-app
//!   service-time distributions: a log-normal body (producing the
//!   long-tailed CDFs of Fig. 1) over an observable "input size" feature,
//!   plus a fixed per-request overhead. SLAs and tail behaviour are
//!   calibrated to Table 3.
//! * **Diurnal trace** — the paper drives its experiments with the Alibaba
//!   e-commerce-search RPS trace, downsampled to a 360 s period (Fig. 6).
//!   [`DiurnalTrace`] generates a seed-deterministic equivalent with the
//!   same qualitative features: day/half-day harmonics, flash-crowd
//!   bursts, and AR(1) jitter.
//! * **Arrivals** — [`arrivals`] turns a rate function into a concrete
//!   request sequence via non-homogeneous Poisson thinning, or a constant
//!   rate for the fixed-load experiments (Table 3, Fig. 2).
//!
//! Requests expose only *observable* features (input size, request class)
//! to control planes; the intrinsic service time stays hidden, exactly as
//! on the real system.

pub mod apps;
pub mod arrivals;
pub mod distributions;
pub mod diurnal;
pub mod trace_io;

pub use apps::{App, AppSpec};
pub use arrivals::{constant_rate_arrivals, trace_arrivals, ArrivalGen};
pub use distributions::{Exponential, LogNormal, Pareto};
pub use diurnal::{DiurnalConfig, DiurnalTrace};
pub use trace_io::{load_trace_csv, save_trace_csv};
