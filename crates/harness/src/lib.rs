//! Parallel experiment engine for the DeepPower reproduction.
//!
//! The paper's evaluation is a grid: applications × governors × seeds ×
//! load points, every cell an independent simulator rollout. This crate
//! turns that shape into three pieces the CLI and the figure benches
//! share:
//!
//! * [`JobSpec`] / [`grid`] — a declarative description of one rollout
//!   and a combinator that expands the cross product;
//! * [`run_grid`] — a work-stealing parallel runner over OS threads.
//!   Each job carries its own seeds and its own server, so results are
//!   **deterministic and independent of the thread count**: the output
//!   for `--threads 1` and `--threads 8` is byte-identical;
//! * [`summarize`] / [`GridReport`] — aggregation of the per-job
//!   telemetry ([`SimResult`] metrics plus the DRL [`StepLog`] summary)
//!   into per-(app, governor) groups, serializable as JSON.
//!
//! Determinism contract: a [`JobSpec`] fully determines its
//! [`JobResult`]. Workload generation, profiling for the predictor
//! baselines, DDPG training and evaluation all derive their RNG streams
//! from `JobSpec::seed` (or fixed constants), never from global state,
//! wall-clock time or the scheduling order of the worker threads.

use deeppower_baselines::{
    collect_profile, max_freq_governor, GeminiConfig, GeminiGovernor, RetailConfig, RetailGovernor,
};
use deeppower_core::train::trace_for;
use deeppower_core::{
    train, ControllerParams, DeepPowerGovernor, Mode, SafetyConfig, SafetyGovernor, StepLog,
    ThreadController, TrainConfig, TrainedPolicy,
};
use deeppower_fleet::{run_fleet_threaded, BalancerPolicy, FleetResult, FleetSpec};
use deeppower_simd_server::{
    FaultPlan, FixedFrequency, FreqPlan, Governor, OverloadPlan, Request, RunOptions, Server,
    ServerConfig, SimResult, MILLISECOND, SECOND,
};
use deeppower_telemetry::{
    event, Event, FleetMonitor, MonitorConfig, Profiler, Recorder, SloSpec, TracePlan,
};
use deeppower_workload::{constant_rate_arrivals, trace_arrivals, App, AppSpec};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Profiling-run parameters for the predictor baselines (ReTail/Gemini):
/// fixed-load fraction, number of profiling episodes, RNG seed. Fixed
/// constants so every grid cell trains its predictors on the same data.
const PROFILE_LOAD: f64 = 0.5;
const PROFILE_EPISODES: u64 = 3;
const PROFILE_SEED: u64 = 77;

/// Ring capacity of the per-job recorder used by [`run_grid_telemetry`].
/// Grid jobs run without request marks or frequency tracing, so their
/// event volume is bounded by DRL steps + training updates + latency
/// snapshots (≈ 3 events per simulated second) plus the bounded
/// residency/lifecycle records — 64 Ki events covers hours of simulated
/// time per job.
pub const GRID_EVENT_CAPACITY: usize = 1 << 16;

/// Which workload drives a job.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Diurnal trace scaled so its peak hits `peak_load` × capacity
    /// (the paper's evaluation workload).
    Diurnal,
    /// Open-loop Poisson arrivals at a constant `peak_load` × capacity
    /// (Table 3's load sweep).
    Constant,
}

/// Which power-management policy runs the job.
///
/// Restricted to named-struct / unit / tuple shapes so the derive
/// serialization covers it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum GovernorSpec {
    /// All cores pinned at max nominal frequency (the unmanaged baseline).
    MaxFreq,
    /// All cores pinned at the given frequency.
    FixedMhz(u32),
    /// Algorithm 1 with fixed `(base_freq, scaling_coef)`.
    ThreadController(f32, f32),
    /// ReTail (linear-regression request-level scaling).
    Retail,
    /// Gemini (NN service-time prediction + boosting).
    Gemini,
    /// A trained DeepPower policy evaluated deterministically.
    DeepPower(TrainedPolicy),
    /// Train a DeepPower agent first (per the embedded config), then
    /// evaluate the resulting policy on the job's workload.
    DeepPowerTrain(TrainConfig),
}

impl GovernorSpec {
    /// Stable label used for grouping and reporting.
    pub fn label(&self) -> String {
        match self {
            GovernorSpec::MaxFreq => "baseline".into(),
            GovernorSpec::FixedMhz(mhz) => format!("fixed-{mhz}"),
            GovernorSpec::ThreadController(_, _) => "thread-controller".into(),
            GovernorSpec::Retail => "retail".into(),
            GovernorSpec::Gemini => "gemini".into(),
            GovernorSpec::DeepPower(_) => "deeppower".into(),
            GovernorSpec::DeepPowerTrain(_) => "deeppower-train".into(),
        }
    }
}

/// One cell of the experiment grid.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobSpec {
    pub app: App,
    pub governor: GovernorSpec,
    /// Master seed: workload generation (and DDPG training, for
    /// [`GovernorSpec::DeepPowerTrain`]) derive from it deterministically.
    pub seed: u64,
    /// Load as a fraction of the app's capacity (peak of the diurnal
    /// trace, or the constant rate).
    pub peak_load: f64,
    /// Workload duration in (simulated) seconds.
    pub duration_s: u64,
    pub workload: WorkloadKind,
    /// Deterministic platform-fault injection for this cell
    /// ([`FaultPlan::none`] = the classic fault-free rollout).
    pub faults: FaultPlan,
    /// Closed-loop client / bounded-queue overload model for this cell
    /// ([`OverloadPlan::none`] = the classic open-loop rollout).
    pub overload: OverloadPlan,
    /// Request-lifecycle tracing plan for this cell
    /// ([`TracePlan::none`] = no traces; tracing never perturbs the
    /// simulation either way).
    #[serde(default)]
    pub rtrace: TracePlan,
    /// Wrap the governor in a [`SafetyGovernor`] (default thresholds).
    /// Reported labels gain a `+safe` suffix.
    pub safety: bool,
}

impl JobSpec {
    /// Reporting label: the governor's own label, `+safe`-suffixed when
    /// the job wraps it in the safety layer.
    pub fn governor_label(&self) -> String {
        let mut label = self.governor.label();
        if self.safety {
            label.push_str("+safe");
        }
        label
    }
}

/// Telemetry of one finished job: the simulator metrics plus a summary of
/// the DRL step log (zeros for non-learning governors).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobResult {
    pub app: String,
    pub governor: String,
    pub seed: u64,
    pub peak_load: f64,
    pub duration_s: u64,
    pub requests: u64,
    pub energy_j: f64,
    pub avg_power_w: f64,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
    pub sla_ms: f64,
    pub timeout_rate: f64,
    pub freq_transitions: u64,
    /// DRL steps logged during the run (0 for non-DRL governors).
    pub drl_steps: u64,
    /// Mean per-step reward over the run (0 for non-DRL governors).
    pub mean_reward: f64,
    /// Faults the simulator injected during the run (0 when the job's
    /// [`FaultPlan`] is inactive).
    pub faults_injected: u64,
    /// Completions whose client was still waiting (== `requests` when
    /// the job's [`OverloadPlan`] is inactive).
    pub goodput: u64,
    /// Completions after the client abandoned (wasted work).
    pub wasted: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Retries injected by the closed-loop clients.
    pub retries: u64,
    /// Server busy-time burned on wasted completions, seconds.
    pub wasted_s: f64,
}

impl JobResult {
    fn from_sim(spec: &JobSpec, sim: &SimResult, log: &[StepLog]) -> Self {
        let app_spec = AppSpec::get(spec.app);
        let ms = |ns: u64| ns as f64 / MILLISECOND as f64;
        let s = &sim.stats;
        let drl_steps = log.len() as u64;
        let mean_reward = if log.is_empty() {
            0.0
        } else {
            log.iter().map(|l| l.reward).sum::<f64>() / log.len() as f64
        };
        Self {
            app: app_spec.name.to_string(),
            governor: spec.governor_label(),
            seed: spec.seed,
            peak_load: spec.peak_load,
            duration_s: spec.duration_s,
            requests: s.count,
            energy_j: sim.energy_j,
            avg_power_w: sim.avg_power_w,
            mean_ms: s.mean_ns / MILLISECOND as f64,
            p50_ms: ms(s.p50_ns),
            p95_ms: ms(s.p95_ns),
            p99_ms: ms(s.p99_ns),
            max_ms: ms(s.max_ns),
            sla_ms: ms(app_spec.sla),
            timeout_rate: s.timeout_rate(),
            freq_transitions: sim.freq_transitions,
            drl_steps,
            mean_reward,
            faults_injected: sim.faults_injected,
            goodput: sim.goodput,
            wasted: sim.wasted,
            shed: sim.shed,
            retries: sim.retries,
            wasted_s: sim.wasted_s,
        }
    }

    /// Goodput as a fraction of everything the clients offered
    /// (completions + shed); 1.0 for an open-loop run, 0.0 when nothing
    /// was offered.
    pub fn goodput_ratio(&self) -> f64 {
        let offered = self.goodput + self.wasted + self.shed;
        if offered == 0 {
            return 0.0;
        }
        self.goodput as f64 / offered as f64
    }
}

/// Training seed calibrated for `app` at the reduced (default) scale.
///
/// DDPG outcomes at 8 episodes × 120 s are bimodal — some seeds train a
/// policy that holds the SLA, others over-throttle until the queue
/// collapses. These values come from a per-app sweep through this
/// harness against the Fig. 7 shape criteria (see EXPERIMENTS.md,
/// "Training seeds"); re-sweep after any change that alters what enters
/// the replay buffer.
pub fn calibrated_train_seed(app: App) -> u64 {
    match app {
        App::Sphinx => 54,
        App::ImgDnn => 7,
        _ => 42,
    }
}

/// Expand the cross product `apps × governors × seeds` into a job list
/// (row-major: governors vary fastest, then seeds, then apps).
pub fn grid(
    apps: &[App],
    governors: &[GovernorSpec],
    seeds: &[u64],
    peak_load: f64,
    duration_s: u64,
    workload: WorkloadKind,
) -> Vec<JobSpec> {
    let mut jobs = Vec::with_capacity(apps.len() * governors.len() * seeds.len());
    for &app in apps {
        for &seed in seeds {
            for gov in governors {
                jobs.push(JobSpec {
                    app,
                    governor: gov.clone(),
                    seed,
                    peak_load,
                    duration_s,
                    workload,
                    faults: FaultPlan::none(),
                    overload: OverloadPlan::none(),
                    rtrace: TracePlan::none(),
                    safety: false,
                });
            }
        }
    }
    jobs
}

/// Build the job's arrival stream. Diurnal jobs derive the arrival seed
/// exactly like [`deeppower_core::evaluate`] so a `DeepPower` grid cell
/// reproduces the CLI's `eval` numbers; constant-rate jobs feed the seed
/// straight through (Table 3 parity).
fn arrivals_for(spec: &JobSpec, app_spec: &AppSpec) -> Vec<Request> {
    match spec.workload {
        WorkloadKind::Diurnal => {
            let trace = trace_for(app_spec, spec.peak_load, spec.duration_s, spec.seed);
            trace_arrivals(
                app_spec,
                &trace,
                spec.seed.wrapping_mul(131).wrapping_add(17),
            )
        }
        WorkloadKind::Constant => constant_rate_arrivals(
            app_spec,
            app_spec.rps_for_load(spec.peak_load),
            spec.duration_s * SECOND,
            spec.seed,
        ),
    }
}

/// Run one grid cell to completion. Pure: everything is derived from the
/// spec, so calling this from any thread at any time gives the same
/// result.
pub fn run_job(spec: &JobSpec) -> JobResult {
    run_job_recorded(spec, 0, &Recorder::disabled())
}

/// [`run_job`] with a telemetry [`Recorder`]. The event stream is
/// bracketed by [`event::JobStart`]/[`event::JobEnd`] carrying `job`
/// (the job's grid index); in between come the engine's and governor's
/// events — for [`GovernorSpec::DeepPowerTrain`] cells that includes the
/// full training history (per-step `DrlStep`/`TrainUpdate`, per-episode
/// `EpisodeEnd`) before the evaluation rollout.
///
/// Every event is a pure function of `(spec, job)` — no wall-clock data
/// — which is what lets [`run_grid_telemetry`] promise byte-identical
/// artifacts at any thread count.
pub fn run_job_recorded(spec: &JobSpec, job: u64, rec: &Recorder) -> JobResult {
    run_job_profiled(spec, job, rec, &Profiler::disabled())
}

/// [`run_job_recorded`] with a span [`Profiler`]. The whole cell runs
/// under a `harness.job` root span; inside it the engine, training and
/// DDPG spans nest as usual. The profiler is `Send + Sync`, so one
/// handle can aggregate across all grid workers — and because spans are
/// wall-clock-only artifacts, enabling it cannot perturb the
/// [`JobResult`] or the event stream (see
/// `profiled_grid_is_byte_identical_at_any_thread_count`).
pub fn run_job_profiled(spec: &JobSpec, job: u64, rec: &Recorder, prof: &Profiler) -> JobResult {
    let _job_span = prof.span("harness.job");
    let app_spec = AppSpec::get(spec.app);
    let server = Server::new(ServerConfig::paper_default(app_spec.n_threads));
    let arrivals = arrivals_for(spec, &app_spec);
    let opts = RunOptions {
        faults: spec.faults,
        overload: spec.overload,
        rtrace: spec.rtrace,
        ..Default::default()
    };
    let plan = FreqPlan::xeon_gold_5218r;

    rec.emit(|| {
        Event::JobStart(event::JobStart {
            job,
            app: app_spec.name.to_string(),
            governor: spec.governor_label(),
            seed: spec.seed,
        })
    });

    let (result, sim_ns) = match &spec.governor {
        GovernorSpec::MaxFreq => {
            let mut gov = max_freq_governor();
            let sim = run_sim(&server, &arrivals, &mut gov, opts, rec, spec.safety, prof);
            (JobResult::from_sim(spec, &sim, &[]), sim.duration_ns)
        }
        GovernorSpec::FixedMhz(mhz) => {
            let mut gov = FixedFrequency { mhz: *mhz };
            let sim = run_sim(&server, &arrivals, &mut gov, opts, rec, spec.safety, prof);
            (JobResult::from_sim(spec, &sim, &[]), sim.duration_ns)
        }
        GovernorSpec::ThreadController(base_freq, scaling_coef) => {
            let mut gov = ThreadController::new(ControllerParams::new(*base_freq, *scaling_coef));
            let sim = run_sim(&server, &arrivals, &mut gov, opts, rec, spec.safety, prof);
            (JobResult::from_sim(spec, &sim, &[]), sim.duration_ns)
        }
        GovernorSpec::Retail => {
            let profile = collect_profile(&app_spec, PROFILE_LOAD, PROFILE_EPISODES, PROFILE_SEED);
            let mut gov = RetailGovernor::train(&profile, plan(), RetailConfig::default());
            let sim = run_sim(&server, &arrivals, &mut gov, opts, rec, spec.safety, prof);
            (JobResult::from_sim(spec, &sim, &[]), sim.duration_ns)
        }
        GovernorSpec::Gemini => {
            let profile = collect_profile(&app_spec, PROFILE_LOAD, PROFILE_EPISODES, PROFILE_SEED);
            let mut gov = GeminiGovernor::train(
                &profile,
                plan(),
                app_spec.n_threads,
                GeminiConfig::default(),
                5,
            );
            let sim = run_sim(&server, &arrivals, &mut gov, opts, rec, spec.safety, prof);
            (JobResult::from_sim(spec, &sim, &[]), sim.duration_ns)
        }
        GovernorSpec::DeepPower(policy) => run_policy(spec, &server, &arrivals, policy, rec, prof),
        GovernorSpec::DeepPowerTrain(train_cfg) => {
            let mut cfg = *train_cfg;
            cfg.app = spec.app;
            cfg.seed = spec.seed;
            let (policy, _) = train::train_profiled(&cfg, rec, prof);
            run_policy(spec, &server, &arrivals, &policy, rec, prof)
        }
    };

    rec.emit(|| {
        Event::JobEnd(event::JobEnd {
            job,
            sim_ns,
            requests: result.requests,
            energy_j: result.energy_j,
            drl_steps: result.drl_steps,
        })
    });
    result
}

/// Run the simulation, wrapping `gov` in a [`SafetyGovernor`] (default
/// thresholds, events into `rec`) when `safety` is set. The wrapper
/// borrows the governor through the engine's `&mut dyn Governor`
/// forwarding impl, so heterogeneous policies need no boxing.
fn run_sim(
    server: &Server,
    arrivals: &[Request],
    gov: &mut dyn Governor,
    opts: RunOptions,
    rec: &Recorder,
    safety: bool,
    prof: &Profiler,
) -> SimResult {
    if safety {
        let n_cores = server.config().n_cores;
        let mut safe =
            SafetyGovernor::new(gov, n_cores, SafetyConfig::default()).with_recorder(rec.clone());
        server.run_profiled(arrivals, &mut safe, opts, rec, prof)
    } else {
        let mut gov = gov;
        server.run_profiled(arrivals, &mut gov, opts, rec, prof)
    }
}

fn run_policy(
    spec: &JobSpec,
    server: &Server,
    arrivals: &[Request],
    policy: &TrainedPolicy,
    rec: &Recorder,
    prof: &Profiler,
) -> (JobResult, u64) {
    let mut agent = policy.build_agent();
    agent.set_profiler(prof);
    let mut gov =
        DeepPowerGovernor::new(&mut agent, policy.deeppower, Mode::Eval).with_recorder(rec.clone());
    let opts = RunOptions {
        tick_ns: policy.deeppower.short_time,
        faults: spec.faults,
        overload: spec.overload,
        rtrace: spec.rtrace,
        ..Default::default()
    };
    let sim = run_sim(server, arrivals, &mut gov, opts, rec, spec.safety, prof);
    let duration = sim.duration_ns;
    (JobResult::from_sim(spec, &sim, &gov.log), duration)
}

/// Execute all jobs on `threads` worker threads with work stealing.
///
/// Workers claim job indices from a shared atomic counter and write each
/// result into its job's dedicated slot, so the output vector is ordered
/// by job index regardless of which worker ran which job or in what
/// order — the returned results (and any JSON rendered from them) are
/// identical for every thread count. `threads = 0` uses the machine's
/// available parallelism.
pub fn run_grid(jobs: &[JobSpec], threads: usize) -> Vec<JobResult> {
    run_grid_inner(jobs, threads, false, &Profiler::disabled()).0
}

/// [`run_grid`] with a shared span [`Profiler`]. Every worker records
/// into the same handle (the profiler is `Send + Sync` and keeps
/// per-thread open-span stacks), so the phase table and Chrome trace
/// cover the whole grid: one `harness.job` root span per job, with the
/// engine/training/DDPG spans of that job nested inside on whichever
/// worker thread ran it. Results stay byte-identical to [`run_grid`] —
/// spans are a wall-clock-only artifact channel.
pub fn run_grid_profiled(jobs: &[JobSpec], threads: usize, prof: &Profiler) -> Vec<JobResult> {
    run_grid_inner(jobs, threads, false, prof).0
}

/// [`run_grid`] plus one telemetry event stream per job, index-aligned
/// with the results.
///
/// Each worker gives the job it claimed a fresh ring recorder
/// ([`GRID_EVENT_CAPACITY`]) on its own thread and drains the events
/// into the job's dedicated slot, so — like the results themselves —
/// the event streams depend only on the job specs and their indices:
/// serializing stream `i` (e.g. via `deeppower_telemetry::to_jsonl`)
/// yields byte-identical output at `--threads 1` and `--threads 8`.
pub fn run_grid_telemetry(jobs: &[JobSpec], threads: usize) -> (Vec<JobResult>, Vec<Vec<Event>>) {
    let (results, events) = run_grid_inner(jobs, threads, true, &Profiler::disabled());
    (results, events.expect("telemetry slots requested"))
}

#[allow(clippy::type_complexity)]
fn run_grid_inner(
    jobs: &[JobSpec],
    threads: usize,
    telemetry: bool,
    prof: &Profiler,
) -> (Vec<JobResult>, Option<Vec<Vec<Event>>>) {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let threads = threads.min(jobs.len()).max(1);

    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<(JobResult, Vec<Event>)>> =
        jobs.iter().map(|_| OnceLock::new()).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(idx) else { break };
                // Recorders are thread-local by construction (`!Send`):
                // each job builds its own on the worker running it and
                // the events leave through the per-index slot.
                let rec = if telemetry {
                    Recorder::ring(GRID_EVENT_CAPACITY)
                } else {
                    Recorder::disabled()
                };
                let result = run_job_profiled(job, idx as u64, &rec, prof);
                let events = rec.drain_events();
                assert!(
                    slots[idx].set((result, events)).is_ok(),
                    "job slot written twice"
                );
            });
        }
    });

    let mut results = Vec::with_capacity(jobs.len());
    let mut events = telemetry.then(|| Vec::with_capacity(jobs.len()));
    for slot in slots {
        let (result, ev) = slot
            .into_inner()
            .expect("worker panicked before finishing job");
        results.push(result);
        if let Some(events) = &mut events {
            events.push(ev);
        }
    }
    (results, events)
}

/// Mean metrics of one (app, governor) group across its seeds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroupSummary {
    pub app: String,
    pub governor: String,
    pub runs: u64,
    pub requests: u64,
    pub avg_power_w: f64,
    pub energy_j: f64,
    pub mean_ms: f64,
    pub p99_ms: f64,
    pub timeout_rate: f64,
    pub mean_reward: f64,
}

/// A whole grid run: the raw per-job telemetry plus per-group means.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridReport {
    pub jobs: Vec<JobResult>,
    pub groups: Vec<GroupSummary>,
}

impl GridReport {
    /// Serialize deterministically (object key order is insertion order,
    /// floats print shortest-round-trip).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("GridReport serialization cannot fail")
    }
}

/// Group results by (app, governor), preserving first-seen order, and
/// average the headline metrics over the seeds in each group.
pub fn summarize(results: Vec<JobResult>) -> GridReport {
    let mut groups: Vec<GroupSummary> = Vec::new();
    for r in &results {
        let group = match groups
            .iter_mut()
            .find(|g| g.app == r.app && g.governor == r.governor)
        {
            Some(g) => g,
            None => {
                groups.push(GroupSummary {
                    app: r.app.clone(),
                    governor: r.governor.clone(),
                    runs: 0,
                    requests: 0,
                    avg_power_w: 0.0,
                    energy_j: 0.0,
                    mean_ms: 0.0,
                    p99_ms: 0.0,
                    timeout_rate: 0.0,
                    mean_reward: 0.0,
                });
                groups.last_mut().unwrap()
            }
        };
        group.runs += 1;
        group.requests += r.requests;
        group.avg_power_w += r.avg_power_w;
        group.energy_j += r.energy_j;
        group.mean_ms += r.mean_ms;
        group.p99_ms += r.p99_ms;
        group.timeout_rate += r.timeout_rate;
        group.mean_reward += r.mean_reward;
    }
    for g in &mut groups {
        let n = g.runs as f64;
        g.avg_power_w /= n;
        g.energy_j /= n;
        g.mean_ms /= n;
        g.p99_ms /= n;
        g.timeout_rate /= n;
        g.mean_reward /= n;
    }
    GridReport {
        jobs: results,
        groups,
    }
}

/// The canonical fault scenarios of the robustness evaluation, seeded so
/// the whole matrix is replayable. `none` is the fault-free reference the
/// degradation deltas are computed against.
pub fn fault_scenarios(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    let base = FaultPlan {
        seed,
        ..FaultPlan::none()
    };
    vec![
        ("none", FaultPlan::none()),
        (
            "dvfs",
            FaultPlan {
                dvfs_fail_prob: 0.8,
                dvfs_spike_prob: 0.1,
                dvfs_spike_min_ns: 50_000,
                dvfs_spike_max_ns: 500_000,
                ..base
            },
        ),
        (
            "sensor",
            FaultPlan {
                sensor_drop_prob: 0.3,
                power_noise_frac: 0.2,
                ..base
            },
        ),
        (
            "stall",
            FaultPlan {
                stall_period_ns: 500 * MILLISECOND,
                stall_duration_ns: 20 * MILLISECOND,
                ..base
            },
        ),
        (
            "all",
            FaultPlan {
                dvfs_fail_prob: 0.8,
                dvfs_spike_prob: 0.1,
                dvfs_spike_min_ns: 50_000,
                dvfs_spike_max_ns: 500_000,
                sensor_drop_prob: 0.3,
                power_noise_frac: 0.2,
                stall_period_ns: 500 * MILLISECOND,
                stall_duration_ns: 20 * MILLISECOND,
                ..base
            },
        ),
    ]
}

/// The canonical overload scenarios: closed-loop clients with bounded
/// queues and seeded retries, scaled to the app's SLA so every workload
/// sees comparable pressure relative to its own deadline.
pub fn overload_scenarios(seed: u64, sla_ns: u64) -> Vec<(&'static str, OverloadPlan)> {
    let sla_ns = sla_ns.max(1);
    let base = OverloadPlan {
        seed,
        queue_capacity: 256,
        client_timeout_ns: 4 * sla_ns,
        retry_prob: 0.8,
        max_attempts: 3,
        retry_backoff_ns: sla_ns,
        retry_jitter_ns: (sla_ns / 4).max(1),
        ..OverloadPlan::none()
    };
    vec![
        // Impatient clients re-offering almost every timeout: the load
        // amplification loop of a classic retry storm.
        (
            "retry-storm",
            OverloadPlan {
                retry_prob: 0.9,
                max_attempts: 4,
                ..base
            },
        ),
        // A transient arrival multiplier on top of the closed loop.
        (
            "flash-crowd",
            OverloadPlan {
                burst_start_ns: 500 * MILLISECOND,
                burst_duration_ns: SECOND,
                burst_factor: 3,
                ..base
            },
        ),
        // Tight queue, short deadlines, near-certain retries: the regime
        // where an unmanaged server congestion-collapses.
        (
            "collapse",
            OverloadPlan {
                queue_capacity: 64,
                client_timeout_ns: 2 * sla_ns,
                retry_prob: 0.95,
                max_attempts: 5,
                retry_backoff_ns: (sla_ns / 2).max(1),
                ..base
            },
        ),
    ]
}

/// Full robustness scenario list: the five platform-fault scenarios
/// (overload-free) followed by the three overload scenarios
/// (fault-free). `none` stays first as the shared delta baseline.
pub fn robustness_scenarios(
    seed: u64,
    sla_ns: u64,
) -> Vec<(&'static str, FaultPlan, OverloadPlan)> {
    let mut out: Vec<_> = fault_scenarios(seed)
        .into_iter()
        .map(|(name, faults)| (name, faults, OverloadPlan::none()))
        .collect();
    out.extend(
        overload_scenarios(seed, sla_ns)
            .into_iter()
            .map(|(name, overload)| (name, FaultPlan::none(), overload)),
    );
    out
}

/// One cell of the robustness matrix: a governor under a fault scenario,
/// with degradation deltas against the same governor's fault-free run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RobustnessRow {
    pub governor: String,
    pub scenario: String,
    pub avg_power_w: f64,
    pub p99_ms: f64,
    pub timeout_rate: f64,
    pub faults_injected: u64,
    /// Burn-rate alerts fired by a [`FleetMonitor`] evaluating the
    /// app's SLA over the job's window-rollup stream (default
    /// multi-window rules; short runs rarely span enough windows to
    /// trip them).
    pub alerts: u64,
    /// Seconds of objective-time in instantaneous SLO violation,
    /// summed across objectives (a window violating two objectives
    /// counts twice).
    pub violation_s: f64,
    /// Deltas vs the same governor's `none` scenario.
    pub d_power_w: f64,
    pub d_p99_ms: f64,
    pub d_timeout_rate: f64,
    /// Completions the client was still waiting for (== all completions
    /// on overload-free rows).
    pub goodput: u64,
    /// Server busy-seconds burned on abandoned requests.
    pub wasted_s: f64,
    /// Requests shed at admission.
    pub shed: u64,
}

/// The governors × fault-scenarios degradation matrix for one app.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RobustnessReport {
    pub app: String,
    pub peak_load: f64,
    pub duration_s: u64,
    pub seed: u64,
    pub rows: Vec<RobustnessRow>,
}

impl RobustnessReport {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RobustnessReport serialization cannot fail")
    }

    /// Plain-text degradation table (one row per governor × scenario).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:<12} {:>9} {:>9} {:>9} {:>8} {:>7} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7}\n",
            "governor",
            "scenario",
            "power_w",
            "p99_ms",
            "timeout",
            "faults",
            "alerts",
            "viol_s",
            "d_power",
            "d_p99",
            "d_timeout",
            "goodput",
            "wasted_s",
            "shed"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<24} {:<12} {:>9.2} {:>9.2} {:>9.4} {:>8} {:>7} {:>7.2} {:>+9.2} {:>+9.2} {:>+9.4} {:>9} {:>9.3} {:>7}\n",
                r.governor,
                r.scenario,
                r.avg_power_w,
                r.p99_ms,
                r.timeout_rate,
                r.faults_injected,
                r.alerts,
                r.violation_s,
                r.d_power_w,
                r.d_p99_ms,
                r.d_timeout_rate,
                r.goodput,
                r.wasted_s,
                r.shed
            ));
        }
        out
    }
}

/// Resolve a scenario selection against [`robustness_scenarios`].
///
/// `wanted` empty means "all eight". Otherwise the result is `none`
/// (always kept first — every matrix chunk needs its delta baseline)
/// followed by the requested scenarios in canonical order. Unknown
/// names are a one-line `Err` listing the valid set.
pub fn select_scenarios(
    seed: u64,
    sla_ns: u64,
    wanted: &[String],
) -> Result<Vec<(&'static str, FaultPlan, OverloadPlan)>, String> {
    let all = robustness_scenarios(seed, sla_ns);
    if wanted.is_empty() {
        return Ok(all);
    }
    for w in wanted {
        if !all.iter().any(|(name, _, _)| name == w) {
            let names: Vec<_> = all.iter().map(|(n, _, _)| *n).collect();
            return Err(format!("unknown scenario `{w}` ({})", names.join("|")));
        }
    }
    Ok(all
        .into_iter()
        .filter(|(name, _, _)| *name == "none" || wanted.iter().any(|w| w == name))
        .collect())
}

/// Build the robustness job list: every governor (plain and, when
/// `include_safety`, safety-wrapped) under every fault *and* overload
/// scenario ([`robustness_scenarios`]). Row-major: scenarios vary
/// fastest, then the safety axis, then governors — matching
/// [`robustness_matrix`]'s row order.
pub fn robustness_jobs(
    app: App,
    governors: &[GovernorSpec],
    include_safety: bool,
    seed: u64,
    peak_load: f64,
    duration_s: u64,
) -> Vec<JobSpec> {
    let scenarios = robustness_scenarios(seed, AppSpec::get(app).sla);
    robustness_jobs_for(
        &scenarios,
        app,
        governors,
        include_safety,
        seed,
        peak_load,
        duration_s,
    )
}

/// [`robustness_jobs`] over an explicit scenario list (see
/// [`select_scenarios`]). The first scenario must be the overload- and
/// fault-free `none` baseline.
#[allow(clippy::too_many_arguments)]
pub fn robustness_jobs_for(
    scenarios: &[(&'static str, FaultPlan, OverloadPlan)],
    app: App,
    governors: &[GovernorSpec],
    include_safety: bool,
    seed: u64,
    peak_load: f64,
    duration_s: u64,
) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for gov in governors {
        for &safety in &[false, true][..if include_safety { 2 } else { 1 }] {
            for (_, faults, overload) in scenarios {
                jobs.push(JobSpec {
                    app,
                    governor: gov.clone(),
                    seed,
                    peak_load,
                    duration_s,
                    workload: WorkloadKind::Constant,
                    faults: *faults,
                    overload: *overload,
                    rtrace: TracePlan::none(),
                    safety,
                });
            }
        }
    }
    jobs
}

/// Run the governors × fault-scenarios matrix and compute each cell's
/// degradation relative to the same governor's fault-free run.
///
/// Each job runs under a telemetry recorder ([`run_grid_telemetry`]) and
/// its event stream feeds a single-node [`FleetMonitor`] evaluating the
/// app's SLA ([`SloSpec::for_sla_ns`]), so every row also reports
/// burn-rate alert counts and time in SLO violation. Event streams are
/// ring-capped at [`GRID_EVENT_CAPACITY`]; a dvfs fault storm on a long
/// run can clip the *earliest* events, which may drop leading windows
/// from the monitor's view (never the run's own results).
pub fn robustness_matrix(
    app: App,
    governors: &[GovernorSpec],
    include_safety: bool,
    seed: u64,
    peak_load: f64,
    duration_s: u64,
    threads: usize,
) -> RobustnessReport {
    let scenarios = robustness_scenarios(seed, AppSpec::get(app).sla);
    robustness_matrix_for(
        &scenarios,
        app,
        governors,
        include_safety,
        seed,
        peak_load,
        duration_s,
        threads,
    )
}

/// [`robustness_matrix`] over an explicit scenario list (see
/// [`select_scenarios`]), e.g. the CLI's `--scenario` filter. The first
/// scenario must be the `none` baseline the deltas are taken against.
#[allow(clippy::too_many_arguments)]
pub fn robustness_matrix_for(
    scenarios: &[(&'static str, FaultPlan, OverloadPlan)],
    app: App,
    governors: &[GovernorSpec],
    include_safety: bool,
    seed: u64,
    peak_load: f64,
    duration_s: u64,
    threads: usize,
) -> RobustnessReport {
    let jobs = robustness_jobs_for(
        scenarios,
        app,
        governors,
        include_safety,
        seed,
        peak_load,
        duration_s,
    );
    let (results, events) = run_grid_telemetry(&jobs, threads);
    let app_spec = AppSpec::get(app);
    let mut slo = SloSpec::for_sla_ns(app_spec.name, app_spec.sla);
    // Overload rows also answer for delivered goodput: windows where
    // less than half the offered load completes usefully violate.
    slo.goodput_ratio = 0.5;
    let health: Vec<(u64, f64)> = events
        .iter()
        .map(|stream| {
            let mut mon = FleetMonitor::new(MonitorConfig::with_slo(slo.clone()));
            mon.ingest(0, stream);
            let rep = mon.finish();
            let violation_ns: u64 = rep.outcomes.iter().map(|o| o.time_in_violation_ns).sum();
            (rep.alerts.len() as u64, violation_ns as f64 / 1e9)
        })
        .collect();
    let n_scenarios = scenarios.len();
    let mut rows = Vec::with_capacity(results.len());
    for ((chunk_jobs, chunk), chunk_health) in jobs
        .chunks(n_scenarios)
        .zip(results.chunks(n_scenarios))
        .zip(health.chunks(n_scenarios))
    {
        // First job of every chunk is the governor's `none` baseline.
        debug_assert!(!chunk_jobs[0].faults.is_active() && !chunk_jobs[0].overload.is_active());
        let base = &chunk[0];
        for (((name, _, _), r), &(alerts, violation_s)) in
            scenarios.iter().zip(chunk).zip(chunk_health)
        {
            rows.push(RobustnessRow {
                governor: r.governor.clone(),
                scenario: name.to_string(),
                avg_power_w: r.avg_power_w,
                p99_ms: r.p99_ms,
                timeout_rate: r.timeout_rate,
                faults_injected: r.faults_injected,
                alerts,
                violation_s,
                d_power_w: r.avg_power_w - base.avg_power_w,
                d_p99_ms: r.p99_ms - base.p99_ms,
                d_timeout_rate: r.timeout_rate - base.timeout_rate,
                goodput: r.goodput,
                wasted_s: r.wasted_s,
                shed: r.shed,
            });
        }
    }
    RobustnessReport {
        app: AppSpec::get(app).name.to_string(),
        peak_load,
        duration_s,
        seed,
        rows,
    }
}

/// One cell of a fleet experiment grid: a [`FleetSpec`] plus the shared
/// policy every node evaluates. The policy travels inside the spec —
/// like [`GovernorSpec::DeepPower`] — so the cell fully determines its
/// [`FleetResult`] and the grid inherits the determinism contract.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetJobSpec {
    pub fleet: FleetSpec,
    pub policy: TrainedPolicy,
}

/// Expand a fleet cross product: node counts × balancer policies, one
/// cell per combination, sharing `policy`.
pub fn fleet_grid(
    app: App,
    node_counts: &[usize],
    balancers: &[BalancerPolicy],
    seed: u64,
    peak_load: f64,
    duration_s: u64,
    policy: &TrainedPolicy,
) -> Vec<FleetJobSpec> {
    let mut jobs = Vec::with_capacity(node_counts.len() * balancers.len());
    for &nodes in node_counts {
        for &balancer in balancers {
            jobs.push(FleetJobSpec {
                fleet: FleetSpec::uniform(app, nodes, balancer, seed, peak_load, duration_s),
                policy: policy.clone(),
            });
        }
    }
    jobs
}

/// Execute fleet jobs on `threads` workers with the same work-stealing
/// slot scheme as [`run_grid`]: results are ordered by job index and
/// byte-identical at any thread count.
///
/// The budget splits across two levels: when there are fewer jobs than
/// threads, the leftover cores go *inside* each fleet via
/// [`deeppower_fleet::run_fleet_threaded`] (whose results are themselves
/// byte-identical to the serial driver at any intra-fleet thread
/// count). A 16-core host running a 2-cell grid therefore drives each
/// fleet with 8 worker threads instead of idling 14 cores.
pub fn run_fleet_grid(jobs: &[FleetJobSpec], threads: usize) -> Vec<FleetResult> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let threads = threads.max(1);
    let pool = threads.min(jobs.len()).max(1);
    // Cores left over after one worker per job parallelize the fleets
    // themselves (run_fleet_threaded clamps to the node count).
    let intra = (threads / pool).max(1);

    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<FleetResult>> = jobs.iter().map(|_| OnceLock::new()).collect();

    std::thread::scope(|scope| {
        for _ in 0..pool {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(idx) else { break };
                let result = run_fleet_threaded(&job.fleet, &job.policy, intra);
                assert!(
                    slots[idx].set(result).is_ok(),
                    "fleet job slot written twice"
                );
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker panicked before finishing fleet job")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> Vec<JobSpec> {
        // 2 apps × 3 governors × 2 seeds = 12 jobs (≥ 10 per the
        // acceptance bar), short enough to run in a debug test.
        grid(
            &[App::Xapian, App::Masstree],
            &[
                GovernorSpec::MaxFreq,
                GovernorSpec::FixedMhz(1500),
                GovernorSpec::ThreadController(0.3, 1.0),
            ],
            &[1, 2],
            0.5,
            2,
            WorkloadKind::Diurnal,
        )
    }

    #[test]
    fn grid_expands_full_cross_product() {
        let jobs = small_grid();
        assert_eq!(jobs.len(), 12);
        // Governors vary fastest; every (app, seed, governor) combination
        // appears exactly once.
        let mut labels: Vec<(App, u64, String)> = jobs
            .iter()
            .map(|j| (j.app, j.seed, j.governor.label()))
            .collect();
        labels.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        labels.dedup();
        assert_eq!(labels.len(), 12);
    }

    #[test]
    fn results_are_byte_identical_across_thread_counts() {
        let jobs = small_grid();
        let serial = summarize(run_grid(&jobs, 1)).to_json();
        let parallel = summarize(run_grid(&jobs, 4)).to_json();
        assert_eq!(serial, parallel, "thread count changed the results");
        // And the report actually contains everything.
        assert!(serial.contains("\"groups\""));
        assert_eq!(serial.matches("\"seed\":").count(), 12);
    }

    #[test]
    fn fleet_grid_results_are_byte_identical_across_thread_counts() {
        let policy = deeppower_fleet::untrained_policy(App::Masstree, 5);
        let jobs = fleet_grid(
            App::Masstree,
            &[1, 2],
            &[
                BalancerPolicy::RoundRobin,
                BalancerPolicy::JoinShortestQueue,
            ],
            3,
            0.4,
            2,
            &policy,
        );
        assert_eq!(jobs.len(), 4);
        let serialize = |results: Vec<FleetResult>| {
            results
                .iter()
                .map(FleetResult::to_json)
                .collect::<Vec<_>>()
                .join("\n")
        };
        let serial = serialize(run_fleet_grid(&jobs, 1));
        let parallel = serialize(run_fleet_grid(&jobs, 4));
        assert_eq!(serial, parallel, "thread count changed fleet results");
        assert_eq!(serial.matches("\"per_node\"").count(), 4);
    }

    #[test]
    fn telemetry_artifacts_are_byte_identical_across_thread_counts() {
        let jobs = small_grid();
        let (res1, ev1) = run_grid_telemetry(&jobs, 1);
        let (res4, ev4) = run_grid_telemetry(&jobs, 4);
        assert_eq!(summarize(res1).to_json(), summarize(res4).to_json());
        assert_eq!(ev1.len(), jobs.len());
        for (i, (a, b)) in ev1.iter().zip(&ev4).enumerate() {
            let ja = deeppower_telemetry::to_jsonl(a);
            let jb = deeppower_telemetry::to_jsonl(b);
            assert_eq!(ja, jb, "job {i} artifact differs across thread counts");
            // Every artifact is bracketed by its lifecycle events.
            assert!(matches!(a.first(), Some(Event::JobStart(s)) if s.job == i as u64));
            assert!(matches!(a.last(), Some(Event::JobEnd(e)) if e.job == i as u64));
        }
    }

    /// Satellite: enabling the span profiler must not change a single
    /// byte of the grid report, at any thread count — spans are a
    /// wall-clock-only artifact channel, fully outside the determinism
    /// contract's inputs. Also pins the span accounting: exactly one
    /// `harness.job` root span per job, engine spans nested inside.
    #[test]
    fn profiled_grid_is_byte_identical_at_any_thread_count() {
        let jobs = small_grid();
        let plain = summarize(run_grid(&jobs, 1)).to_json();
        for threads in [1, 4] {
            let prof = Profiler::enabled();
            let report = summarize(run_grid_profiled(&jobs, threads, &prof)).to_json();
            assert_eq!(
                plain, report,
                "profiling changed grid results at threads={threads}"
            );
            let table = prof.phase_table();
            let count = |name: &str| table.iter().find(|r| r.name == name).map_or(0, |r| r.count);
            assert_eq!(count("harness.job"), jobs.len() as u64);
            assert!(count("engine.completions") > 0);
            // Jobs are the only roots, so the whole engine time nests
            // under them: non-root phases contribute zero root time.
            for row in &table {
                if row.name != "harness.job" {
                    assert_eq!(row.root_ns, 0, "{} escaped harness.job", row.name);
                }
            }
        }
    }

    #[test]
    fn job_results_land_in_job_order() {
        let jobs = small_grid();
        let results = run_grid(&jobs, 3);
        assert_eq!(results.len(), jobs.len());
        for (job, res) in jobs.iter().zip(&results) {
            assert_eq!(res.governor, job.governor.label());
            assert_eq!(res.seed, job.seed);
            assert_eq!(res.app, AppSpec::get(job.app).name);
            assert!(res.requests > 0, "job produced no traffic: {res:?}");
        }
    }

    #[test]
    fn summary_groups_average_over_seeds() {
        let jobs = small_grid();
        let results = run_grid(&jobs, 0);
        let report = summarize(results.clone());
        // 2 apps × 3 governors = 6 groups of 2 seeds each.
        assert_eq!(report.groups.len(), 6);
        for g in &report.groups {
            assert_eq!(g.runs, 2);
            let members: Vec<&JobResult> = results
                .iter()
                .filter(|r| r.app == g.app && r.governor == g.governor)
                .collect();
            let mean_p = members.iter().map(|r| r.avg_power_w).sum::<f64>() / members.len() as f64;
            assert!((g.avg_power_w - mean_p).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_workload_jobs_run() {
        let jobs = vec![JobSpec {
            app: App::Xapian,
            governor: GovernorSpec::MaxFreq,
            seed: 7,
            peak_load: 0.2,
            duration_s: 2,
            workload: WorkloadKind::Constant,
            faults: FaultPlan::none(),
            overload: OverloadPlan::none(),
            rtrace: TracePlan::none(),
            safety: false,
        }];
        let res = run_grid(&jobs, 1);
        assert_eq!(res.len(), 1);
        assert!(res[0].requests > 100);
        assert_eq!(res[0].drl_steps, 0);
    }

    #[test]
    fn faulted_grid_is_byte_identical_across_thread_counts() {
        // The acceptance bar: same (seed, config, FaultPlan) ⇒
        // byte-identical reports and telemetry at any thread count.
        let jobs = robustness_jobs(
            App::Masstree,
            &[
                GovernorSpec::MaxFreq,
                GovernorSpec::ThreadController(0.2, 0.8),
            ],
            true,
            3,
            0.5,
            2,
        );
        let (res1, ev1) = run_grid_telemetry(&jobs, 1);
        let (res4, ev4) = run_grid_telemetry(&jobs, 4);
        assert_eq!(summarize(res1.clone()).to_json(), summarize(res4).to_json());
        for (i, (a, b)) in ev1.iter().zip(&ev4).enumerate() {
            assert_eq!(
                deeppower_telemetry::to_jsonl(a),
                deeppower_telemetry::to_jsonl(b),
                "job {i} telemetry differs across thread counts"
            );
        }
        // Fault-free cells inject nothing; stall scenarios always fire
        // (DVFS faults only trigger on transition attempts, which the
        // max-frequency baseline never makes).
        for (job, r) in jobs.iter().zip(&res1) {
            if !job.faults.is_active() {
                assert_eq!(r.faults_injected, 0);
            } else if job.faults.stall_period_ns > 0 {
                assert!(r.faults_injected > 0, "no faults injected: {r:?}");
            }
        }
        assert!(
            res1.iter().map(|r| r.faults_injected).sum::<u64>() > 0,
            "matrix injected no faults at all"
        );
    }

    #[test]
    fn traced_jobs_are_unperturbed_and_replay_across_thread_counts() {
        // Request tracing never perturbs a grid cell's results, and a
        // traced cell's telemetry stream (request traces included) is
        // byte-identical at any thread count.
        let sla = AppSpec::get(App::Masstree).sla;
        let overload = overload_scenarios(9, sla)
            .into_iter()
            .find(|(name, _)| *name == "collapse")
            .expect("collapse scenario exists")
            .1;
        let mk = |rtrace| {
            vec![JobSpec {
                app: App::Masstree,
                governor: GovernorSpec::MaxFreq,
                seed: 9,
                peak_load: 0.8,
                duration_s: 2,
                workload: WorkloadKind::Constant,
                faults: FaultPlan::none(),
                overload,
                rtrace,
                safety: false,
            }]
        };
        let plan = TracePlan::sampled(0.1, 2, 5);
        let (off_res, _) = run_grid_telemetry(&mk(TracePlan::none()), 1);
        let (on_res, on_ev) = run_grid_telemetry(&mk(plan), 1);
        assert_eq!(
            summarize(off_res).to_json(),
            summarize(on_res.clone()).to_json(),
            "tracing perturbed the job result"
        );
        let traces = on_ev[0]
            .iter()
            .filter(|e| matches!(e, Event::RequestTrace(_)))
            .count();
        assert!(traces > 0, "traced collapse cell emitted no traces");
        let (res4, ev4) = run_grid_telemetry(&mk(plan), 4);
        assert_eq!(
            summarize(on_res).to_json(),
            summarize(res4).to_json(),
            "traced grid diverged across thread counts"
        );
        assert_eq!(
            deeppower_telemetry::to_jsonl(&on_ev[0]),
            deeppower_telemetry::to_jsonl(&ev4[0]),
            "traced telemetry differs across thread counts"
        );
    }

    #[test]
    fn safety_wrapped_jobs_report_suffixed_labels() {
        let mut job = JobSpec {
            app: App::Xapian,
            governor: GovernorSpec::ThreadController(0.3, 1.0),
            seed: 1,
            peak_load: 0.3,
            duration_s: 1,
            workload: WorkloadKind::Constant,
            faults: FaultPlan::none(),
            overload: OverloadPlan::none(),
            rtrace: TracePlan::none(),
            safety: true,
        };
        assert_eq!(job.governor_label(), "thread-controller+safe");
        let res = run_job(&job);
        assert_eq!(res.governor, "thread-controller+safe");
        job.safety = false;
        assert_eq!(job.governor_label(), "thread-controller");
    }

    #[test]
    fn robustness_matrix_has_zero_deltas_on_fault_free_rows() {
        let report = robustness_matrix(App::Masstree, &[GovernorSpec::MaxFreq], true, 5, 0.4, 2, 0);
        // 1 governor × {plain, safe} × 8 scenarios (5 fault + 3 overload).
        assert_eq!(report.rows.len(), 16);
        for row in report.rows.iter().filter(|r| r.scenario == "none") {
            assert_eq!(row.d_power_w, 0.0);
            assert_eq!(row.d_p99_ms, 0.0);
            assert_eq!(row.d_timeout_rate, 0.0);
            assert_eq!(row.faults_injected, 0);
            // MaxFreq at 0.4 load never breaches the SLA, so the
            // health columns of the fault-free rows are clean.
            assert_eq!(row.alerts, 0);
            assert_eq!(row.violation_s, 0.0);
        }
        // Overload scenarios complete real traffic, inject no faults,
        // and report goodput accounting.
        for row in report
            .rows
            .iter()
            .filter(|r| ["retry-storm", "flash-crowd", "collapse"].contains(&r.scenario.as_str()))
        {
            assert_eq!(row.faults_injected, 0);
            assert!(row.goodput > 0, "overload row had no goodput: {row:?}");
        }
        let table = report.render_table();
        assert!(table.contains("baseline+safe"));
        assert!(table.contains("scenario"));
        assert!(table.contains("alerts"));
        assert!(table.contains("viol_s"));
        assert!(table.contains("goodput"));
        assert!(table.contains("retry-storm"));
        assert!(table.contains("collapse"));
    }

    #[test]
    fn select_scenarios_keeps_baseline_and_rejects_unknown() {
        let all = select_scenarios(1, MILLISECOND, &[]).unwrap();
        assert_eq!(all.len(), 8);
        let picked = select_scenarios(1, MILLISECOND, &["retry-storm".into()]).unwrap();
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].0, "none");
        assert_eq!(picked[1].0, "retry-storm");
        assert!(picked[1].2.is_active() && !picked[1].1.is_active());
        // Requesting `none` alone is valid: a pure-baseline run.
        let base = select_scenarios(1, MILLISECOND, &["none".into()]).unwrap();
        assert_eq!(base.len(), 1);
        let err = select_scenarios(1, MILLISECOND, &["retry-strom".into()]).unwrap_err();
        assert!(err.contains("unknown scenario `retry-strom`"), "{err}");
        assert!(err.contains("retry-storm|flash-crowd|collapse"), "{err}");
    }

    /// `--scenario`-style filtering produces the same cells the full
    /// matrix does for those scenarios: the delta baseline is the same
    /// `none` run either way.
    #[test]
    fn filtered_matrix_matches_full_matrix_rows() {
        let scenarios =
            select_scenarios(5, AppSpec::get(App::Masstree).sla, &["collapse".into()]).unwrap();
        let filtered = robustness_matrix_for(
            &scenarios,
            App::Masstree,
            &[GovernorSpec::MaxFreq],
            false,
            5,
            0.4,
            2,
            0,
        );
        assert_eq!(filtered.rows.len(), 2);
        let full = robustness_matrix(App::Masstree, &[GovernorSpec::MaxFreq], false, 5, 0.4, 2, 0);
        for row in &filtered.rows {
            let twin = full
                .rows
                .iter()
                .find(|r| r.scenario == row.scenario)
                .expect("full matrix has the scenario");
            assert_eq!(
                serde_json::to_string(row).unwrap(),
                serde_json::to_string(twin).unwrap()
            );
        }
    }

    /// Acceptance: with faults off, `SafetyGovernor(DeepPower)` matches
    /// plain DeepPower bit-for-bit. The policy trains in-cell from the
    /// job seed, so both runs derive the exact same agent; any safety
    /// intervention would show up in the serialized result.
    #[test]
    fn safety_wrapper_is_transparent_over_deeppower_without_faults() {
        let mut cfg = TrainConfig::for_app(App::Xapian);
        cfg.episodes = 1;
        cfg.episode_s = 10;
        cfg.peak_load = 0.6;
        cfg.deeppower.ddpg.warmup = 4;
        cfg.deeppower.ddpg.batch_size = 8;
        let mut job = JobSpec {
            app: App::Xapian,
            governor: GovernorSpec::DeepPowerTrain(cfg),
            seed: 7,
            peak_load: 0.6,
            duration_s: 2,
            workload: WorkloadKind::Constant,
            faults: FaultPlan::none(),
            overload: OverloadPlan::none(),
            rtrace: TracePlan::none(),
            safety: false,
        };
        let plain = run_job(&job);
        job.safety = true;
        let safe = run_job(&job);
        assert_eq!(safe.governor, "deeppower-train+safe");
        let strip = |r: &JobResult| {
            let mut v = serde_json::to_value(r).expect("serialize JobResult");
            if let serde_json::Value::Object(fields) = &mut v {
                fields.retain(|(k, _)| k != "governor");
            }
            v
        };
        assert_eq!(
            strip(&plain),
            strip(&safe),
            "safety wrapper must not perturb a fault-free DeepPower run"
        );
    }

    #[test]
    fn job_spec_roundtrips_through_json() {
        let job = JobSpec {
            app: App::Masstree,
            governor: GovernorSpec::ThreadController(0.25, 1.5),
            seed: 42,
            peak_load: 0.6,
            duration_s: 30,
            workload: WorkloadKind::Diurnal,
            faults: FaultPlan::none(),
            overload: OverloadPlan::none(),
            rtrace: TracePlan::none(),
            safety: false,
        };
        let json = serde_json::to_string(&job).expect("serialize JobSpec");
        let back: JobSpec = serde_json::from_str(&json).expect("deserialize JobSpec");
        assert_eq!(back.seed, 42);
        assert_eq!(back.governor.label(), "thread-controller");
        assert_eq!(back.workload, WorkloadKind::Diurnal);
    }
}
