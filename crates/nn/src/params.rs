//! Parameter traversal.
//!
//! Optimizers and target-network synchronization need to walk every
//! trainable parameter of a network in a *stable order*. The [`Params`]
//! trait provides that: implementors visit `(weights, gradients)` slice
//! pairs in a deterministic sequence, so an optimizer can maintain flat
//! per-parameter state (Adam moments) indexed by position.

/// Visitor over immutable `(params, grads)` slice pairs.
pub type ParamVisitor<'a> = dyn FnMut(&[f32], &[f32]) + 'a;
/// Visitor over mutable `(params, grads)` slice pairs.
pub type ParamVisitorMut<'a> = dyn FnMut(&mut [f32], &mut [f32]) + 'a;

/// A network (or layer) exposing its trainable parameters.
///
/// The visit order must be identical between `visit_params` and
/// `visit_params_mut`, and stable across calls — optimizer state and
/// weight snapshots depend on it.
pub trait Params {
    fn visit_params(&self, f: &mut ParamVisitor<'_>);
    fn visit_params_mut(&mut self, f: &mut ParamVisitorMut<'_>);

    /// Total number of trainable scalars.
    fn num_params(&self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |w, _| n += w.len());
        n
    }

    /// Flatten all weights into one vector (checkpointing, target sync).
    fn snapshot(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.visit_params(&mut |w, _| out.extend_from_slice(w));
        out
    }

    /// Load a flat snapshot previously produced by [`Params::snapshot`].
    /// Panics if the length does not match the parameter count.
    fn load_snapshot(&mut self, flat: &[f32]) {
        let mut offset = 0usize;
        self.visit_params_mut(&mut |w, _| {
            w.copy_from_slice(&flat[offset..offset + w.len()]);
            offset += w.len();
        });
        assert_eq!(offset, flat.len(), "snapshot length mismatch");
    }

    /// Polyak / soft update: `self = tau * source + (1 - tau) * self`.
    /// This is the DDPG target-network update (`tau` ≈ 0.005).
    fn soft_update_from(&mut self, source_snapshot: &[f32], tau: f32) {
        let mut offset = 0usize;
        self.visit_params_mut(&mut |w, _| {
            let len = w.len();
            for (t, &s) in w.iter_mut().zip(&source_snapshot[offset..offset + len]) {
                *t = tau * s + (1.0 - tau) * *t;
            }
            offset += w.len();
        });
        assert_eq!(offset, source_snapshot.len(), "soft update length mismatch");
    }

    /// Zero every gradient accumulator.
    fn zero_grads(&mut self) {
        self.visit_params_mut(&mut |_, g| g.fill(0.0));
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    fn grad_norm(&self) -> f32 {
        let mut acc = 0.0f32;
        self.visit_params(&mut |_, g| {
            acc += g.iter().map(|&x| x * x).sum::<f32>();
        });
        acc.sqrt()
    }

    /// Scale all gradients so the global norm is at most `max_norm`.
    fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            self.visit_params_mut(&mut |_, g| {
                for x in g.iter_mut() {
                    *x *= s;
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::matrix::Matrix;

    fn tiny_linear() -> Linear {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut l = Linear::new_he(&mut rng, 2, 1);
        l.w = Matrix::from_vec(2, 1, vec![1.0, 2.0]);
        l.b = vec![3.0];
        l
    }

    use rand::SeedableRng;

    #[test]
    fn snapshot_roundtrip() {
        let mut l = tiny_linear();
        let snap = l.snapshot();
        assert_eq!(snap, vec![1.0, 2.0, 3.0]);
        l.w.as_mut_slice().fill(0.0);
        l.load_snapshot(&snap);
        assert_eq!(l.snapshot(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn soft_update_interpolates() {
        let mut target = tiny_linear();
        let source = vec![3.0, 4.0, 5.0];
        target.soft_update_from(&source, 0.5);
        assert_eq!(target.snapshot(), vec![2.0, 3.0, 4.0]);
        // tau = 1 copies exactly.
        target.soft_update_from(&source, 1.0);
        assert_eq!(target.snapshot(), source);
    }

    #[test]
    fn grad_norm_and_clip() {
        let mut l = tiny_linear();
        l.gw.as_mut_slice().copy_from_slice(&[3.0, 4.0]);
        l.gb[0] = 0.0;
        assert!((l.grad_norm() - 5.0).abs() < 1e-6);
        l.clip_grad_norm(1.0);
        assert!((l.grad_norm() - 1.0).abs() < 1e-5);
        // Clipping below the threshold is a no-op.
        l.clip_grad_norm(10.0);
        assert!((l.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn num_params_counts_weights_and_bias() {
        assert_eq!(tiny_linear().num_params(), 3);
    }
}
