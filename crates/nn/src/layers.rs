//! Layers with explicit forward/backward passes.
//!
//! The backward contract used throughout the crate:
//!
//! * `forward(&mut self, x)` caches whatever the backward pass needs and
//!   returns the layer output.
//! * `backward(&mut self, d_out)` **accumulates** parameter gradients into
//!   the layer's `g*` buffers and returns `d_in`, the gradient of the loss
//!   with respect to the layer *input*. Accumulation (rather than
//!   overwrite) lets multi-head networks sum gradients flowing into a
//!   shared trunk; call [`Linear::zero_grad`] before each optimizer step.

use crate::init::{he_init, xavier_init};
use crate::matrix::Matrix;
use crate::params::{ParamVisitor, ParamVisitorMut, Params};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Fully connected layer `y = x·W + b` with `W: in×out`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    /// Weights, `in_dim × out_dim`.
    pub w: Matrix,
    /// Bias, length `out_dim`.
    pub b: Vec<f32>,
    /// Weight gradient accumulator.
    pub gw: Matrix,
    /// Bias gradient accumulator.
    pub gb: Vec<f32>,
    #[serde(skip)]
    cached_input: Option<Matrix>,
}

impl Linear {
    /// He-initialized layer (use before ReLU).
    pub fn new_he<R: Rng>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        Self::from_weight(he_init(rng, in_dim, out_dim))
    }

    /// Xavier-initialized layer (use before sigmoid/tanh or linear output).
    pub fn new_xavier<R: Rng>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        Self::from_weight(xavier_init(rng, in_dim, out_dim))
    }

    fn from_weight(w: Matrix) -> Self {
        let (in_dim, out_dim) = (w.rows(), w.cols());
        Self {
            w,
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(in_dim, out_dim),
            gb: vec![0.0; out_dim],
            cached_input: None,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Number of trainable parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Forward pass; caches the input for the backward pass.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "Linear input width mismatch");
        let mut y = Matrix::zeros(0, 0);
        x.matmul_bias_into(&self.w, &self.b, &mut y);
        self.cached_input = Some(x.clone());
        y
    }

    /// Inference-only forward: does not cache, usable through `&self`.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        x.matmul_bias_into(&self.w, &self.b, &mut y);
        y
    }

    /// Fused inference of this layer followed by an element-wise
    /// activation, into a caller-provided scratch matrix: one kernel, no
    /// intermediate pre-activation matrix.
    pub fn forward_inference_act_into(&self, x: &Matrix, act: ActivationKind, out: &mut Matrix) {
        assert_eq!(x.cols(), self.in_dim(), "Linear input width mismatch");
        x.matmul_bias_act_into(&self.w, &self.b, out, |v| act.apply(v));
    }

    /// Backward pass: accumulates `gw += xᵀ·d_out`, `gb += Σrows d_out`,
    /// returns `d_in = d_out·Wᵀ`.
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let x = self
            .cached_input
            .as_ref()
            .expect("Linear::backward called before forward");
        assert_eq!(d_out.cols(), self.out_dim(), "Linear grad width mismatch");
        x.t_matmul_acc(d_out, &mut self.gw);
        for (g, s) in self.gb.iter_mut().zip(d_out.col_sums()) {
            *g += s;
        }
        d_out.matmul_t(&self.w)
    }

    /// Reset gradient accumulators to zero.
    pub fn zero_grad(&mut self) {
        self.gw.as_mut_slice().fill(0.0);
        self.gb.fill(0.0);
    }
}

impl Params for Linear {
    fn visit_params(&self, f: &mut ParamVisitor<'_>) {
        f(self.w.as_slice(), self.gw.as_slice());
        f(&self.b, &self.gb);
    }

    fn visit_params_mut(&mut self, f: &mut ParamVisitorMut<'_>) {
        f(self.w.as_mut_slice(), self.gw.as_mut_slice());
        f(&mut self.b, &mut self.gb);
    }
}

/// Element-wise activation kinds supported by [`Activation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivationKind {
    Relu,
    Sigmoid,
    Tanh,
    /// Identity — convenient for uniform layer stacks.
    Identity,
}

impl ActivationKind {
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            ActivationKind::Tanh => x.tanh(),
            ActivationKind::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *output* `y = f(x)` — all four
    /// supported activations admit this form, which lets the backward pass
    /// cache only the output.
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            ActivationKind::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::Sigmoid => y * (1.0 - y),
            ActivationKind::Tanh => 1.0 - y * y,
            ActivationKind::Identity => 1.0,
        }
    }
}

/// Stateless element-wise activation layer (caches its output for backward).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Activation {
    pub kind: ActivationKind,
    #[serde(skip)]
    cached_output: Option<Matrix>,
}

impl Activation {
    pub fn new(kind: ActivationKind) -> Self {
        Self {
            kind,
            cached_output: None,
        }
    }

    pub fn relu() -> Self {
        Self::new(ActivationKind::Relu)
    }

    pub fn sigmoid() -> Self {
        Self::new(ActivationKind::Sigmoid)
    }

    pub fn tanh() -> Self {
        Self::new(ActivationKind::Tanh)
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let kind = self.kind;
        let y = x.map(|v| kind.apply(v));
        self.cached_output = Some(y.clone());
        y
    }

    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let kind = self.kind;
        x.map(|v| kind.apply(v))
    }

    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let y = self
            .cached_output
            .as_ref()
            .expect("Activation::backward called before forward");
        let kind = self.kind;
        let deriv = y.map(|v| kind.derivative_from_output(v));
        d_out.hadamard(&deriv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn linear_forward_known_values() {
        let mut l = Linear::from_weight(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        l.b = vec![0.5, -0.5];
        let y = l.forward(&Matrix::from_row(&[1.0, 1.0]));
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn linear_backward_shapes_and_bias_grad() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Linear::new_he(&mut rng, 3, 2);
        let x = Matrix::from_rows(&[&[1.0, 0.0, -1.0], &[0.5, 0.5, 0.5]]);
        let _ = l.forward(&x);
        let d_out = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let d_in = l.backward(&d_out);
        assert_eq!((d_in.rows(), d_in.cols()), (2, 3));
        // Bias gradient is the column sum of d_out over the batch.
        assert_eq!(l.gb, vec![2.0, 2.0]);
    }

    #[test]
    fn backward_accumulates_until_zero_grad() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut l = Linear::new_he(&mut rng, 2, 2);
        let x = Matrix::from_row(&[1.0, 2.0]);
        let g = Matrix::from_row(&[1.0, 1.0]);
        let _ = l.forward(&x);
        let _ = l.backward(&g);
        let first = l.gb.clone();
        let _ = l.forward(&x);
        let _ = l.backward(&g);
        assert_eq!(l.gb[0], 2.0 * first[0]);
        l.zero_grad();
        assert!(l.gb.iter().all(|&v| v == 0.0));
        assert!(l.gw.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn activation_derivatives_match_definitions() {
        for &(kind, x) in &[
            (ActivationKind::Relu, 0.7f32),
            (ActivationKind::Relu, -0.7),
            (ActivationKind::Sigmoid, 0.3),
            (ActivationKind::Tanh, -1.2),
            (ActivationKind::Identity, 5.0),
        ] {
            let y = kind.apply(x);
            let eps = 1e-3;
            let numeric = (kind.apply(x + eps) - kind.apply(x - eps)) / (2.0 * eps);
            let analytic = kind.derivative_from_output(y);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "{kind:?} at {x}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn sigmoid_output_bounded() {
        let mut a = Activation::sigmoid();
        let y = a.forward(&Matrix::from_row(&[-100.0, 0.0, 100.0]));
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut a = Activation::relu();
        let _ = a.backward(&Matrix::from_row(&[1.0]));
    }
}
