//! Weight initialization schemes.
//!
//! Everything takes an explicit RNG so experiments replay deterministically
//! from a seed (a hard requirement for the reproduction's integration tests).

use crate::matrix::Matrix;
use rand::Rng;

/// Xavier/Glorot uniform initialization: `U(-l, l)` with
/// `l = sqrt(6 / (fan_in + fan_out))`. Appropriate before sigmoid/tanh
/// outputs (the DeepPower actor's final layer).
pub fn xavier_init<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    sample_uniform(rng, fan_in, fan_out, limit)
}

/// He/Kaiming uniform initialization: `U(-l, l)` with `l = sqrt(6 / fan_in)`.
/// Appropriate before ReLU layers (all hidden layers here).
pub fn he_init<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0 / fan_in as f32).sqrt();
    sample_uniform(rng, fan_in, fan_out, limit)
}

fn sample_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize, limit: f32) -> Matrix {
    let data = (0..fan_in * fan_out)
        .map(|_| rng.random_range(-limit..limit))
        .collect();
    Matrix::from_vec(fan_in, fan_out, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn xavier_respects_limit_and_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = xavier_init(&mut rng, 8, 32);
        assert_eq!((w.rows(), w.cols()), (8, 32));
        let limit = (6.0f32 / 40.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= limit));
        // Not degenerate: values differ.
        assert!(w.as_slice().iter().any(|&x| x != w.as_slice()[0]));
    }

    #[test]
    fn he_limit_is_wider_than_xavier_for_equal_fans() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let _x = xavier_init(&mut r1, 16, 16);
        let h = he_init(&mut r2, 16, 16);
        let he_limit = (6.0f32 / 16.0).sqrt();
        assert!(h.as_slice().iter().all(|&v| v.abs() <= he_limit));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(he_init(&mut a, 4, 4), he_init(&mut b, 4, 4));
    }
}
