//! Loss functions returning `(scalar loss, gradient w.r.t. prediction)`.
//!
//! Gradients are already divided by the element count, so callers feed them
//! straight into `backward` without extra scaling.

use crate::matrix::Matrix;

/// Mean squared error over all elements.
///
/// Returns `(L, dL/dpred)` with `L = mean((pred - target)^2)` and
/// `dL/dpred = 2 (pred - target) / N`.
pub fn mse_loss(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "mse_loss shape mismatch"
    );
    let n = (pred.rows() * pred.cols()) as f32;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0f32;
    for ((g, &p), &t) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(pred.as_slice())
        .zip(target.as_slice())
    {
        let d = p - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Huber (smooth-L1) loss with threshold `delta`, mean-reduced.
///
/// Quadratic inside `|d| <= delta`, linear outside — a standard choice for
/// stabilizing Q-learning targets (used by the DQN/DDQN agents).
pub fn huber_loss(pred: &Matrix, target: &Matrix, delta: f32) -> (f32, Matrix) {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "huber_loss shape mismatch"
    );
    assert!(delta > 0.0, "huber delta must be positive");
    let n = (pred.rows() * pred.cols()) as f32;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0f32;
    for ((g, &p), &t) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(pred.as_slice())
        .zip(target.as_slice())
    {
        let d = p - t;
        if d.abs() <= delta {
            loss += 0.5 * d * d;
            *g = d / n;
        } else {
            loss += delta * (d.abs() - 0.5 * delta);
            *g = delta * d.signum() / n;
        }
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_when_equal() {
        let a = Matrix::from_row(&[1.0, 2.0, 3.0]);
        let (l, g) = mse_loss(&a, &a);
        assert_eq!(l, 0.0);
        assert!(g.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::from_row(&[2.0, 0.0]);
        let t = Matrix::from_row(&[0.0, 0.0]);
        let (l, g) = mse_loss(&p, &t);
        assert!((l - 2.0).abs() < 1e-6); // (4 + 0) / 2
        assert!((g.as_slice()[0] - 2.0).abs() < 1e-6); // 2*2/2
    }

    #[test]
    fn huber_matches_mse_in_quadratic_region() {
        let p = Matrix::from_row(&[0.5]);
        let t = Matrix::from_row(&[0.0]);
        let (h, hg) = huber_loss(&p, &t, 1.0);
        assert!((h - 0.125).abs() < 1e-6); // 0.5 * 0.25
        assert!((hg.as_slice()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn huber_linear_region_bounded_gradient() {
        let p = Matrix::from_row(&[100.0, -100.0]);
        let t = Matrix::from_row(&[0.0, 0.0]);
        let (_, g) = huber_loss(&p, &t, 1.0);
        assert!((g.as_slice()[0] - 0.5).abs() < 1e-6); // delta/n = 1/2
        assert!((g.as_slice()[1] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn gradients_are_finite_difference_consistent() {
        let p = Matrix::from_row(&[0.3, -1.7, 2.2]);
        let t = Matrix::from_row(&[0.0, 0.5, 2.0]);
        for loss in [
            (|a: &Matrix, b: &Matrix| mse_loss(a, b)) as fn(&Matrix, &Matrix) -> (f32, Matrix),
            |a, b| huber_loss(a, b, 1.0),
        ] {
            let (_, g) = loss(&p, &t);
            for i in 0..3 {
                let eps = 1e-3;
                let mut up = p.clone();
                up.as_mut_slice()[i] += eps;
                let mut dn = p.clone();
                dn.as_mut_slice()[i] -= eps;
                let numeric = (loss(&up, &t).0 - loss(&dn, &t).0) / (2.0 * eps);
                assert!(
                    (numeric - g.as_slice()[i]).abs() < 1e-2,
                    "idx {i}: {numeric} vs {}",
                    g.as_slice()[i]
                );
            }
        }
    }
}
