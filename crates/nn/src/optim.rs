//! Optimizers over [`Params`]-visiting networks.
//!
//! State is kept flat and positional: the visitor order defines the
//! parameter indexing, which [`Params`] guarantees is stable.

use crate::params::Params;

/// Common optimizer interface.
pub trait Optimizer {
    /// Apply one update using the gradients currently accumulated in the
    /// network. Does *not* zero gradients — callers do that before the next
    /// backward pass.
    fn step<N: Params>(&mut self, net: &mut N);
}

/// Plain SGD with optional momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    pub fn new(lr: f32, momentum: f32, net: &impl Params) -> Self {
        Self {
            lr,
            momentum,
            velocity: vec![0.0; net.num_params()],
        }
    }
}

impl Optimizer for Sgd {
    fn step<N: Params>(&mut self, net: &mut N) {
        let mut offset = 0usize;
        let (lr, mom) = (self.lr, self.momentum);
        let velocity = &mut self.velocity;
        net.visit_params_mut(&mut |w, g| {
            let v = &mut velocity[offset..offset + w.len()];
            for ((wi, &gi), vi) in w.iter_mut().zip(g.iter()).zip(v.iter_mut()) {
                *vi = mom * *vi + gi;
                *wi -= lr * *vi;
            }
            offset += w.len();
        });
        assert_eq!(offset, velocity.len(), "network size changed under Sgd");
    }
}

/// Adam hyper-parameters. Defaults follow Kingma & Ba (and the PyTorch
/// defaults the paper's implementation would have used).
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Decoupled-style L2 weight decay (0 disables).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Adam with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    pub cfg: AdamConfig,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    pub fn new(cfg: AdamConfig, net: &impl Params) -> Self {
        let n = net.num_params();
        Self {
            cfg,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Steps taken so far (bias-correction counter).
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step<N: Params>(&mut self, net: &mut N) {
        self.t += 1;
        let cfg = self.cfg;
        let bc1 = 1.0 - cfg.beta1.powi(self.t as i32);
        let bc2 = 1.0 - cfg.beta2.powi(self.t as i32);
        let mut offset = 0usize;
        let (m, v) = (&mut self.m, &mut self.v);
        net.visit_params_mut(&mut |w, g| {
            let ms = &mut m[offset..offset + w.len()];
            let vs = &mut v[offset..offset + w.len()];
            for (((wi, &gi), mi), vi) in w
                .iter_mut()
                .zip(g.iter())
                .zip(ms.iter_mut())
                .zip(vs.iter_mut())
            {
                let gi = gi + cfg.weight_decay * *wi;
                *mi = cfg.beta1 * *mi + (1.0 - cfg.beta1) * gi;
                *vi = cfg.beta2 * *vi + (1.0 - cfg.beta2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *wi -= cfg.lr * m_hat / (v_hat.sqrt() + cfg.eps);
            }
            offset += w.len();
        });
        assert_eq!(offset, m.len(), "network size changed under Adam");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::matrix::Matrix;
    use rand::{rngs::StdRng, SeedableRng};

    fn quadratic_layer() -> Linear {
        // One weight, no input needed: we set gradients by hand to emulate
        // minimizing f(w) = w^2 (grad = 2w).
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new_he(&mut rng, 1, 1);
        l.w = Matrix::from_vec(1, 1, vec![5.0]);
        l.b = vec![0.0];
        l
    }

    fn set_quadratic_grad(l: &mut Linear) {
        let w = l.w.as_slice()[0];
        l.gw = Matrix::from_vec(1, 1, vec![2.0 * w]);
        let b = l.b[0];
        l.gb = vec![2.0 * b];
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut l = quadratic_layer();
        let mut opt = Sgd::new(0.1, 0.0, &l);
        for _ in 0..100 {
            set_quadratic_grad(&mut l);
            opt.step(&mut l);
        }
        assert!(l.w.as_slice()[0].abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let mut plain = quadratic_layer();
        let mut with_mom = quadratic_layer();
        let mut o1 = Sgd::new(0.01, 0.0, &plain);
        let mut o2 = Sgd::new(0.01, 0.9, &with_mom);
        for _ in 0..50 {
            set_quadratic_grad(&mut plain);
            o1.step(&mut plain);
            set_quadratic_grad(&mut with_mom);
            o2.step(&mut with_mom);
        }
        assert!(with_mom.w.as_slice()[0].abs() < plain.w.as_slice()[0].abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut l = quadratic_layer();
        let mut opt = Adam::new(
            AdamConfig {
                lr: 0.3,
                ..Default::default()
            },
            &l,
        );
        for _ in 0..300 {
            set_quadratic_grad(&mut l);
            opt.step(&mut l);
        }
        assert!(l.w.as_slice()[0].abs() < 1e-2, "w = {}", l.w.as_slice()[0]);
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the very first Adam step has magnitude ~lr
        // regardless of gradient scale.
        let mut l = quadratic_layer();
        let before = l.w.as_slice()[0];
        let mut opt = Adam::new(
            AdamConfig {
                lr: 0.05,
                ..Default::default()
            },
            &l,
        );
        set_quadratic_grad(&mut l);
        opt.step(&mut l);
        let delta = (before - l.w.as_slice()[0]).abs();
        assert!((delta - 0.05).abs() < 1e-3, "delta {delta}");
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut l = quadratic_layer();
        l.gw = Matrix::zeros(1, 1);
        l.gb = vec![0.0];
        let before = l.w.as_slice()[0];
        let mut opt = Adam::new(
            AdamConfig {
                lr: 0.1,
                weight_decay: 0.1,
                ..Default::default()
            },
            &l,
        );
        opt.step(&mut l);
        assert!(l.w.as_slice()[0] < before);
    }
}
