//! # deeppower-nn
//!
//! A small, dependency-light dense neural-network stack used by the DeepPower
//! reproduction. The paper's actor network has ~2k parameters, so nothing
//! heavier than hand-rolled row-major matrices and manual backpropagation is
//! warranted (the Rust RL ecosystem note in the reproduction brief calls
//! `tch-rs` out as thin; this crate removes that dependency entirely).
//!
//! Design points:
//!
//! * [`Matrix`] is a row-major `f32` matrix with the handful of BLAS-1/2/3
//!   kernels the MLPs need (`matmul`, transposed variants, AXPY-style
//!   element-wise ops). Everything is bounds-checked in debug builds and
//!   iterator/slice-driven so the optimizer can vectorize.
//! * [`Linear`], [`Activation`] and [`Sequential`] implement forward and
//!   backward passes explicitly. `backward` *returns the gradient with
//!   respect to the layer input*, which is what DDPG needs to push critic
//!   gradients through the action input (`dQ/da`).
//! * [`Adam`] and [`Sgd`] walk a network's parameters through the
//!   [`Params`] visitor trait, so optimizer state lines up with any
//!   parameter layout (plain stacks, two-headed actors, critics with a
//!   concatenated action input).
//! * Weights serialize to a flat `Vec<f32>` snapshot (serde-friendly) for
//!   checkpointing and for the soft target-network updates of DDPG.
//!
//! The crate is deterministic: all initialization takes an explicit
//! [`rand::rngs::StdRng`].

pub mod init;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod optim;
pub mod params;
pub mod sequential;

pub use init::{he_init, xavier_init};
pub use layers::{Activation, ActivationKind, Linear};
pub use loss::{huber_loss, mse_loss};
pub use matrix::Matrix;
pub use optim::{Adam, AdamConfig, Optimizer, Sgd};
pub use params::{ParamVisitor, ParamVisitorMut, Params};
pub use sequential::Sequential;

/// Numerical tolerance used by tests and the finite-difference gradient
/// checker. Loose enough for `f32` accumulation error over small nets.
pub const GRAD_CHECK_TOL: f32 = 2e-2;

/// Finite-difference gradient check helper: perturbs each parameter of `net`
/// by `eps`, re-evaluates `loss_fn`, and compares the numerical slope with
/// the analytic gradient recorded in the layer `g*` buffers.
///
/// Returns the maximum relative error over all parameters. Intended for
/// tests; O(P) forward passes.
pub fn finite_diff_max_rel_err<N, F>(net: &mut N, mut loss_fn: F, eps: f32) -> f32
where
    N: Params,
    F: FnMut(&mut N) -> f32,
{
    // Snapshot analytic grads first (loss_fn must have been run with backward
    // by the caller so grads are populated).
    let mut analytic = Vec::new();
    net.visit_params(&mut |_, g: &[f32]| analytic.extend_from_slice(g));

    let mut max_rel = 0.0f32;
    for (p, &a) in analytic.iter().enumerate() {
        // Perturb parameter p upward.
        perturb_param(net, p, eps);
        let up = loss_fn(net);
        perturb_param(net, p, -2.0 * eps);
        let down = loss_fn(net);
        perturb_param(net, p, eps); // restore
        let numeric = (up - down) / (2.0 * eps);
        let denom = numeric.abs().max(a.abs()).max(1e-4);
        let rel = (numeric - a).abs() / denom;
        if rel > max_rel {
            max_rel = rel;
        }
    }
    max_rel
}

fn perturb_param<N: Params>(net: &mut N, target: usize, delta: f32) {
    let mut seen = 0usize;
    net.visit_params_mut(&mut |w: &mut [f32], _g: &mut [f32]| {
        if target >= seen && target < seen + w.len() {
            w[target - seen] += delta;
        }
        seen += w.len();
    });
}
