//! A plain layer stack with forward/backward over alternating
//! linear/activation layers.

use crate::layers::{Activation, ActivationKind, Linear};
use crate::matrix::Matrix;
use crate::params::{ParamVisitor, ParamVisitorMut, Params};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single stage in a [`Sequential`] stack.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Stage {
    Linear(Linear),
    Activation(Activation),
}

/// Feed-forward stack of linear and activation layers.
///
/// Used directly for the DQN/DDQN value networks, Gemini's service-time
/// predictor, and as a building block for the DDPG actor/critic (which need
/// extra structure: a two-headed actor and an action-concatenating critic —
/// see `deeppower-drl`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sequential {
    stages: Vec<Stage>,
}

impl Sequential {
    pub fn new() -> Self {
        Self { stages: Vec::new() }
    }

    /// Build an MLP `dims[0] → dims[1] → … → dims[n-1]` with `hidden`
    /// activation between layers and `output` activation at the end
    /// (use [`ActivationKind::Identity`] for a linear head).
    ///
    /// Hidden layers are He-initialized; the output layer Xavier.
    pub fn mlp<R: Rng>(
        rng: &mut R,
        dims: &[usize],
        hidden: ActivationKind,
        output: ActivationKind,
    ) -> Self {
        assert!(dims.len() >= 2, "mlp needs at least input and output dims");
        let mut stages = Vec::new();
        for i in 0..dims.len() - 1 {
            let last = i == dims.len() - 2;
            let layer = if last {
                Linear::new_xavier(rng, dims[i], dims[i + 1])
            } else {
                Linear::new_he(rng, dims[i], dims[i + 1])
            };
            stages.push(Stage::Linear(layer));
            let act = if last { output } else { hidden };
            if act != ActivationKind::Identity {
                stages.push(Stage::Activation(Activation::new(act)));
            }
        }
        Self { stages }
    }

    pub fn push_linear(&mut self, l: Linear) -> &mut Self {
        self.stages.push(Stage::Linear(l));
        self
    }

    pub fn push_activation(&mut self, a: Activation) -> &mut Self {
        self.stages.push(Stage::Activation(a));
        self
    }

    /// Training forward pass (caches intermediates).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut cur = x.clone();
        for s in &mut self.stages {
            cur = match s {
                Stage::Linear(l) => l.forward(&cur),
                Stage::Activation(a) => a.forward(&cur),
            };
        }
        cur
    }

    /// Inference forward pass (no caching, `&self`). This is the path whose
    /// latency Table 2 measures.
    ///
    /// `Linear → Activation` pairs run through the fused
    /// bias+activation kernel, ping-ponging between the current value and
    /// one scratch matrix so a whole stack performs O(1) allocations.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut cur = x.clone();
        let mut scratch = Matrix::zeros(0, 0);
        let mut i = 0;
        while i < self.stages.len() {
            match (&self.stages[i], self.stages.get(i + 1)) {
                (Stage::Linear(l), Some(Stage::Activation(a))) => {
                    l.forward_inference_act_into(&cur, a.kind, &mut scratch);
                    std::mem::swap(&mut cur, &mut scratch);
                    i += 2;
                }
                (Stage::Linear(l), _) => {
                    cur = l.forward_inference(&cur);
                    i += 1;
                }
                (Stage::Activation(a), _) => {
                    cur = a.forward_inference(&cur);
                    i += 1;
                }
            }
        }
        cur
    }

    /// [`Sequential::forward_inference`] into caller-owned storage: the
    /// result lands in `cur`, with `scratch` as the ping-pong partner.
    /// Once both matrices have seen the stack's widest shape no further
    /// allocation happens — hot callers (the fleet lockstep driver runs
    /// this every epoch) keep the pair across calls and go fully
    /// allocation-free. Bit-identical to `forward_inference`: same
    /// fused kernels in the same order, only the storage is reused.
    pub fn forward_inference_into(&self, x: &Matrix, cur: &mut Matrix, scratch: &mut Matrix) {
        cur.reshape(x.rows(), x.cols());
        cur.as_mut_slice().copy_from_slice(x.as_slice());
        let mut i = 0;
        while i < self.stages.len() {
            match (&self.stages[i], self.stages.get(i + 1)) {
                (Stage::Linear(l), Some(Stage::Activation(a))) => {
                    l.forward_inference_act_into(cur, a.kind, scratch);
                    std::mem::swap(cur, scratch);
                    i += 2;
                }
                (Stage::Linear(l), _) => {
                    // Identity-fused = plain linear (Identity applies as
                    // exactly `x`, so the floats are untouched).
                    l.forward_inference_act_into(cur, ActivationKind::Identity, scratch);
                    std::mem::swap(cur, scratch);
                    i += 1;
                }
                (Stage::Activation(a), _) => {
                    let kind = a.kind;
                    cur.map_inplace(|v| kind.apply(v));
                    i += 1;
                }
            }
        }
    }

    /// Backward pass; returns gradient w.r.t. the stack input.
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let mut cur = d_out.clone();
        for s in self.stages.iter_mut().rev() {
            cur = match s {
                Stage::Linear(l) => l.backward(&cur),
                Stage::Activation(a) => a.backward(&cur),
            };
        }
        cur
    }

    pub fn zero_grad(&mut self) {
        for s in &mut self.stages {
            if let Stage::Linear(l) = s {
                l.zero_grad();
            }
        }
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.num_params()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Params for Sequential {
    fn visit_params(&self, f: &mut ParamVisitor<'_>) {
        for s in &self.stages {
            if let Stage::Linear(l) = s {
                l.visit_params(f);
            }
        }
    }

    fn visit_params_mut(&mut self, f: &mut ParamVisitorMut<'_>) {
        for s in &mut self.stages {
            if let Stage::Linear(l) = s {
                l.visit_params_mut(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse_loss;
    use crate::optim::{Adam, AdamConfig, Optimizer};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn mlp_shapes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Sequential::mlp(
            &mut rng,
            &[8, 32, 24, 16, 2],
            ActivationKind::Relu,
            ActivationKind::Sigmoid,
        );
        let y = net.forward(&Matrix::from_row(&[0.1; 8]));
        assert_eq!((y.rows(), y.cols()), (1, 2));
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // 8*32+32 + 32*24+24 + 24*16+16 + 16*2+2
        assert_eq!(net.param_count(), 288 + 792 + 400 + 34);
    }

    #[test]
    fn gradient_check_small_mlp() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = Sequential::mlp(
            &mut rng,
            &[3, 5, 2],
            ActivationKind::Tanh,
            ActivationKind::Identity,
        );
        let x = Matrix::from_rows(&[&[0.3, -0.2, 0.9], &[-0.5, 0.1, 0.4]]);
        let target = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);

        // Populate analytic grads.
        net.zero_grad();
        let y = net.forward(&x);
        let (_, grad) = mse_loss(&y, &target);
        let _ = net.backward(&grad);

        let max_err = crate::finite_diff_max_rel_err(
            &mut net,
            |n| {
                let y = n.forward_inference(&x);
                mse_loss(&y, &target).0
            },
            1e-3,
        );
        assert!(max_err < crate::GRAD_CHECK_TOL, "max rel err {max_err}");
    }

    #[test]
    fn training_reduces_loss_on_toy_regression() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut net = Sequential::mlp(
            &mut rng,
            &[2, 16, 1],
            ActivationKind::Relu,
            ActivationKind::Identity,
        );
        let mut opt = Adam::new(
            AdamConfig {
                lr: 1e-2,
                ..Default::default()
            },
            &net,
        );
        // Fit y = x0 + 2*x1 on a fixed mini-dataset.
        let x = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[0.5, 0.5],
        ]);
        let t = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0], &[1.5]]);
        let initial = {
            let y = net.forward_inference(&x);
            mse_loss(&y, &t).0
        };
        for _ in 0..500 {
            net.zero_grad();
            let y = net.forward(&x);
            let (_, g) = mse_loss(&y, &t);
            let _ = net.backward(&g);
            opt.step(&mut net);
        }
        let final_loss = {
            let y = net.forward_inference(&x);
            mse_loss(&y, &t).0
        };
        assert!(
            final_loss < initial * 0.05,
            "loss did not drop enough: {initial} -> {final_loss}"
        );
    }

    #[test]
    fn backward_returns_input_gradient_of_right_shape() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = Sequential::mlp(
            &mut rng,
            &[4, 8, 3],
            ActivationKind::Relu,
            ActivationKind::Identity,
        );
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let y = net.forward(&x);
        let d_in = net.backward(&Matrix::full(y.rows(), y.cols(), 1.0));
        assert_eq!((d_in.rows(), d_in.cols()), (1, 4));
    }

    #[test]
    fn forward_inference_into_is_bit_identical_and_reuses_storage() {
        let mut rng = StdRng::seed_from_u64(17);
        let net = Sequential::mlp(
            &mut rng,
            &[6, 24, 24, 3],
            ActivationKind::Relu,
            ActivationKind::Identity, // ends on a bare Linear stage
        );
        let mut cur = Matrix::zeros(0, 0);
        let mut scratch = Matrix::zeros(0, 0);
        for batch in [1usize, 4, 9] {
            let mut x = Matrix::zeros(batch, 6);
            for r in 0..batch {
                let row: Vec<f32> = (0..6).map(|c| ((r * 6 + c) as f32).sin()).collect();
                x.set_row(r, &row);
            }
            let want = net.forward_inference(&x);
            net.forward_inference_into(&x, &mut cur, &mut scratch);
            assert_eq!(want, cur, "batch {batch} diverged");
        }
    }

    #[test]
    fn forward_inference_matches_training_forward() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut net = Sequential::mlp(
            &mut rng,
            &[5, 10, 4],
            ActivationKind::Sigmoid,
            ActivationKind::Tanh,
        );
        let x = Matrix::from_row(&[0.1, -0.4, 0.7, 0.0, 2.0]);
        let a = net.forward(&x);
        let b = net.forward_inference(&x);
        assert_eq!(a, b);
    }
}
