//! Row-major `f32` matrix with the small set of kernels an MLP needs.
//!
//! The networks in this repository are tiny (tens of units per layer,
//! batches of at most a few hundred rows), so the kernels favour clarity and
//! auto-vectorizable inner loops over blocking/tiling. All dimension
//! mismatches panic — shape errors here are programming bugs, not runtime
//! conditions.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f32`.
///
/// Rows are the batch dimension throughout this crate: a batch of `n`
/// state vectors of width `d` is an `n × d` matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Build from a flat row-major vector. Panics if the length does not
    /// match `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "Matrix::from_vec length mismatch");
        Self { rows, cols, data }
    }

    /// Build a single-row matrix from a slice (the common "one state vector"
    /// case on the inference path).
    pub fn from_row(row: &[f32]) -> Self {
        Self { rows: 1, cols: row.len(), data: row.to_vec() }
    }

    /// Build from nested slices; all rows must share a length.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major view of the backing storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Element accessor (debug-asserted bounds; row-major).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// `self (n×k) · other (k×m) → n×m`.
    ///
    /// ikj loop order so the innermost loop walks both output row and RHS row
    /// contiguously — lets LLVM vectorize without an explicit transpose.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * m..(i + 1) * m];
            for (kk, &a) in a_row.iter().enumerate() {
                let b_row = &other.data[kk * m..(kk + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ (k×n)ᵀ · other (n×m) → k×m` without materializing the
    /// transpose. Used for weight gradients (`xᵀ · dy`).
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(k, m);
        for i in 0..n {
            let a_row = &self.data[i * k..(i + 1) * k];
            let b_row = &other.data[i * m..(i + 1) * m];
            for (kk, &a) in a_row.iter().enumerate() {
                let out_row = &mut out.data[kk * m..(kk + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self (n×k) · otherᵀ (m×k)ᵀ → n×m` without materializing the
    /// transpose. Used for input gradients (`dy · Wᵀ`).
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t dimension mismatch");
        let (n, k, m) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * m..(i + 1) * m];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Add a row vector (broadcast over rows), e.g. bias addition.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias width mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, &b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Column sums (used to reduce bias gradients over the batch).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        out
    }

    /// Element-wise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (x, &y) in self.data.iter_mut().zip(&other.data) {
            *x += alpha * y;
        }
    }

    /// Element-wise product into a new matrix (Hadamard).
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Apply `f` to every element into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Horizontally concatenate two matrices with equal row counts:
    /// `(n×a) ⧺ (n×b) → n×(a+b)`. Used by the DDPG critic to join the
    /// state-path activations with the action input.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hconcat row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix { rows: self.rows, cols, data }
    }

    /// Split a matrix column-wise at `at`: inverse of [`Matrix::hconcat`].
    pub fn hsplit(&self, at: usize) -> (Matrix, Matrix) {
        assert!(at <= self.cols, "hsplit out of range");
        let mut left = Matrix::zeros(self.rows, at);
        let mut right = Matrix::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
        (left, right)
    }

    /// Mean of all elements; 0 for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Scale all elements in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![1.0, 0.5, -1.0, 2.0, 0.0, 3.0]);
        // aᵀ is 2×3; aᵀ·b is 2×2.
        let c = a.t_matmul(&b);
        let at = Matrix::from_vec(2, 3, vec![1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
        let expected = at.matmul(&b);
        assert_eq!(c, expected);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 3, vec![1.0; 12]);
        let c = a.matmul_t(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 4);
        for r in 0..2 {
            for col in 0..4 {
                let expected: f32 = a.row(r).iter().sum();
                assert!((c.get(r, col) - expected).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn hconcat_hsplit_roundtrip() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 3, vec![5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        let joined = a.hconcat(&b);
        assert_eq!(joined.cols(), 5);
        assert_eq!(joined.row(0), &[1.0, 2.0, 5.0, 6.0, 7.0]);
        let (l, r) = joined.hsplit(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn bias_broadcast_and_col_sums() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, -2.0]);
        assert_eq!(m.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn map_and_hadamard() {
        let a = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        let relu = a.map(|x| x.max(0.0));
        assert_eq!(relu.as_slice(), &[1.0, 0.0, 3.0]);
        let h = a.hadamard(&relu);
        assert_eq!(h.as_slice(), &[1.0, 0.0, 9.0]);
    }
}
