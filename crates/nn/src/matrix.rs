//! Row-major `f32` matrix with the small set of kernels an MLP needs.
//!
//! The networks in this repository are tiny (tens of units per layer,
//! batches of at most a few hundred rows), so the kernels favour clarity
//! over blocking/tiling heroics — but the inner loops are hand-rolled
//! portable SIMD: explicit [`LANES`]-wide chunked lanes (fixed-size
//! array chunks the compiler lowers to vector registers on any target,
//! no `std::simd`, no intrinsics, no dependencies). All dimension
//! mismatches panic — shape errors here are programming bugs, not runtime
//! conditions.
//!
//! Bit-exactness contract: every SIMD kernel accumulates each output
//! element in the *same ascending-K scalar order* as the naive reference
//! loop — lanes only split independent output elements, never one
//! element's accumulation chain. Reordering a dot product would change
//! float rounding, which would re-roll every calibrated training seed
//! downstream; the `simd_*_bit_exact` proptests pin the contract.

use serde::{Deserialize, Serialize};

/// Explicit lane width of the hand-rolled SIMD kernels: 8 × f32 = one
/// AVX2 register (and two NEON/SSE registers — still vectorized, just
/// double-pumped). Chunks are fixed-size arrays so the compiler sees
/// the width at compile time and emits vector code without bounds
/// checks.
const LANES: usize = 8;

/// `out[j] += a * b[j]` over [`LANES`]-wide chunks with a scalar tail.
/// Each `j` is an independent accumulator, so lane-chunking changes no
/// float: this is the axpy at the heart of the ikj matmul kernels.
#[inline]
fn axpy_lanes(out: &mut [f32], a: f32, b: &[f32]) {
    debug_assert_eq!(out.len(), b.len());
    let mut oc = out.chunks_exact_mut(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (o, b) in (&mut oc).zip(&mut bc) {
        let o: &mut [f32; LANES] = o.try_into().expect("exact chunk");
        let b: &[f32; LANES] = b.try_into().expect("exact chunk");
        for l in 0..LANES {
            o[l] += a * b[l];
        }
    }
    for (o, &b) in oc.into_remainder().iter_mut().zip(bc.remainder()) {
        *o += a * b;
    }
}

/// Dense row-major matrix of `f32`.
///
/// Rows are the batch dimension throughout this crate: a batch of `n`
/// state vectors of width `d` is an `n × d` matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from a flat row-major vector. Panics if the length does not
    /// match `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "Matrix::from_vec length mismatch");
        Self { rows, cols, data }
    }

    /// Build a single-row matrix from a slice (the common "one state vector"
    /// case on the inference path).
    pub fn from_row(row: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: row.len(),
            data: row.to_vec(),
        }
    }

    /// Build from nested slices; all rows must share a length.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Overwrite row `r` in place. Lets a caller reuse one stacked-state
    /// buffer across batched inference calls instead of rebuilding the
    /// matrix each step.
    pub fn set_row(&mut self, r: usize, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "Matrix::set_row width mismatch");
        let start = r * self.cols;
        self.data[start..start + self.cols].copy_from_slice(row);
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major view of the backing storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Element accessor (debug-asserted bounds; row-major).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Reshape in place to `rows × cols`, reusing the backing `Vec`
    /// (contents are unspecified afterwards). The workhorse behind the
    /// `*_into` kernels: a long-lived scratch `Matrix` never reallocates
    /// once it has seen its largest shape.
    pub fn reshape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Gather the given rows of `self` into `out` (reshaped to
    /// `rows.len() × self.cols`), preserving the order of `rows`. Row
    /// indices may repeat. This is the ragged-batching primitive: a
    /// caller holding one stacked `N × d` state matrix extracts an
    /// arbitrary row subset — e.g. the nodes of one hardware profile
    /// group — as a dense batch without touching the source.
    pub fn gather_rows_into(&self, rows: &[usize], out: &mut Matrix) {
        out.reshape(rows.len(), self.cols);
        for (k, &r) in rows.iter().enumerate() {
            assert!(
                r < self.rows,
                "Matrix::gather_rows_into row {r} out of bounds"
            );
            let src = r * self.cols;
            let dst = k * self.cols;
            let (s, d) = (
                &self.data[src..src + self.cols],
                &mut out.data[dst..dst + self.cols],
            );
            d.copy_from_slice(s);
        }
    }

    /// Rows-of-B panel size for the blocked matmul kernels. Each panel
    /// (`K_BLOCK × m` floats of the RHS) stays resident in L1/L2 while it
    /// is streamed against every row of the LHS.
    const K_BLOCK: usize = 64;

    /// `self (n×k) · other (k×m) → n×m`.
    ///
    /// ikj loop order so the innermost loop walks both output row and RHS row
    /// contiguously — lets LLVM vectorize without an explicit transpose.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a caller-provided output (reshaped as
    /// needed). Blocked over K: the kernel walks the RHS in panels of
    /// [`Matrix::K_BLOCK`] rows so each panel is reused across all LHS
    /// rows. Per output element the accumulation still runs in ascending
    /// K order, so the result is bit-identical to the naive ikj loop.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        out.reshape(self.rows, other.cols);
        out.data.fill(0.0);
        self.matmul_acc(other, out);
    }

    /// `out += self · other` (blocked; `out` must already be `n×m`).
    pub fn matmul_acc(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul output shape"
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        for kb in (0..k).step_by(Self::K_BLOCK) {
            let kend = (kb + Self::K_BLOCK).min(k);
            for i in 0..n {
                let a_row = &self.data[i * k + kb..i * k + kend];
                let out_row = &mut out.data[i * m..(i + 1) * m];
                for (kk, &a) in a_row.iter().enumerate() {
                    let b_row = &other.data[(kb + kk) * m..(kb + kk + 1) * m];
                    axpy_lanes(out_row, a, b_row);
                }
            }
        }
    }

    /// Fused `self · other + bias` (bias broadcast over rows) into `out`.
    ///
    /// Each output row is *initialized* with the bias and then accumulated
    /// in the same blocked ikj order — one pass instead of a matmul
    /// followed by a separate broadcast sweep.
    pub fn matmul_bias_into(&self, other: &Matrix, bias: &[f32], out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        assert_eq!(bias.len(), other.cols, "bias width mismatch");
        let (n, m) = (self.rows, other.cols);
        out.reshape(n, m);
        for i in 0..n {
            out.data[i * m..(i + 1) * m].copy_from_slice(bias);
        }
        self.matmul_acc(other, out);
    }

    /// Fused `f(self · other + bias)` into `out` — the whole inference
    /// path of a `Linear → Activation` pair in one kernel, with no
    /// intermediate allocation or extra pass for the element-wise map.
    pub fn matmul_bias_act_into(
        &self,
        other: &Matrix,
        bias: &[f32],
        out: &mut Matrix,
        f: impl Fn(f32) -> f32,
    ) {
        self.matmul_bias_into(other, bias, out);
        for x in &mut out.data {
            *x = f(*x);
        }
    }

    /// `selfᵀ (k×n)ᵀ · other (n×m) → k×m` without materializing the
    /// transpose. Used for weight gradients (`xᵀ · dy`).
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.t_matmul_acc(other, &mut out);
        out
    }

    /// `out += selfᵀ · other` (`out` must already be `k×m`). Lets gradient
    /// accumulators take `gw += xᵀ·dy` directly instead of materializing
    /// the product and `axpy`-ing it in.
    pub fn t_matmul_acc(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, other.cols),
            "t_matmul output shape"
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        for i in 0..n {
            let a_row = &self.data[i * k..(i + 1) * k];
            let b_row = &other.data[i * m..(i + 1) * m];
            for (kk, &a) in a_row.iter().enumerate() {
                let out_row = &mut out.data[kk * m..(kk + 1) * m];
                axpy_lanes(out_row, a, b_row);
            }
        }
    }

    /// `self (n×k) · otherᵀ (m×k)ᵀ → n×m` without materializing the
    /// transpose. Used for input gradients (`dy · Wᵀ`).
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_t_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_t`] into a caller-provided output. The RHS is
    /// already walked row-wise (it *is* the transposed-B layout), so each
    /// output element is a contiguous dot product. Re-ordering a dot
    /// product's accumulation would change float rounding, so SIMD here
    /// register-blocks **across output columns** instead: four
    /// independent accumulator chains run in parallel, each still a
    /// plain ascending-K scalar chain — bit-identical to the naive loop,
    /// but with instruction-level parallelism the single-chain version
    /// cannot reach (a lone FMA chain is latency-bound).
    pub fn matmul_t_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_t dimension mismatch");
        let (n, k, m) = (self.rows, self.cols, other.rows);
        out.reshape(n, m);
        const JB: usize = 4;
        for i in 0..n {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * m..(i + 1) * m];
            let mut j = 0;
            while j + JB <= m {
                let b0 = &other.data[j * k..(j + 1) * k];
                let b1 = &other.data[(j + 1) * k..(j + 2) * k];
                let b2 = &other.data[(j + 2) * k..(j + 3) * k];
                let b3 = &other.data[(j + 3) * k..(j + 4) * k];
                let mut acc = [0.0f32; JB];
                for (kk, &a) in a_row.iter().enumerate() {
                    acc[0] += a * b0[kk];
                    acc[1] += a * b1[kk];
                    acc[2] += a * b2[kk];
                    acc[3] += a * b3[kk];
                }
                out_row[j..j + JB].copy_from_slice(&acc);
                j += JB;
            }
            for (jj, o) in out_row.iter_mut().enumerate().skip(j) {
                let b_row = &other.data[jj * k..(jj + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
    }

    /// Add a row vector (broadcast over rows), e.g. bias addition.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias width mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, &b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Column sums (used to reduce bias gradients over the batch).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        out
    }

    /// Element-wise `self += alpha * other` (lane-chunked; element-wise
    /// ops have no accumulation order to preserve).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        axpy_lanes(&mut self.data, alpha, &other.data);
    }

    /// Element-wise product into a new matrix (Hadamard).
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Apply `f` to every element into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Horizontally concatenate two matrices with equal row counts:
    /// `(n×a) ⧺ (n×b) → n×(a+b)`. Used by the DDPG critic to join the
    /// state-path activations with the action input.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hconcat row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Split a matrix column-wise at `at`: inverse of [`Matrix::hconcat`].
    pub fn hsplit(&self, at: usize) -> (Matrix, Matrix) {
        assert!(at <= self.cols, "hsplit out of range");
        let mut left = Matrix::zeros(self.rows, at);
        let mut right = Matrix::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
        (left, right)
    }

    /// Mean of all elements; 0 for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Scale all elements in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_rows_into_preserves_order_and_allows_repeats() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = Matrix::zeros(0, 0);
        m.gather_rows_into(&[2, 0, 2], &mut out);
        assert_eq!(out.rows(), 3);
        assert_eq!(out.cols(), 2);
        assert_eq!(out.as_slice(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        // Reuse across a shrinking gather: stale storage must not leak.
        m.gather_rows_into(&[1], &mut out);
        assert_eq!(out.as_slice(), &[3.0, 4.0]);
        // Empty gathers are legal (a profile group can own zero nodes
        // only transiently, but the primitive should not care).
        m.gather_rows_into(&[], &mut out);
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn matmul_small_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![1.0, 0.5, -1.0, 2.0, 0.0, 3.0]);
        // aᵀ is 2×3; aᵀ·b is 2×2.
        let c = a.t_matmul(&b);
        let at = Matrix::from_vec(2, 3, vec![1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
        let expected = at.matmul(&b);
        assert_eq!(c, expected);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 3, vec![1.0; 12]);
        let c = a.matmul_t(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 4);
        for r in 0..2 {
            for col in 0..4 {
                let expected: f32 = a.row(r).iter().sum();
                assert!((c.get(r, col) - expected).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn hconcat_hsplit_roundtrip() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 3, vec![5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        let joined = a.hconcat(&b);
        assert_eq!(joined.cols(), 5);
        assert_eq!(joined.row(0), &[1.0, 2.0, 5.0, 6.0, 7.0]);
        let (l, r) = joined.hsplit(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn bias_broadcast_and_col_sums() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, -2.0]);
        assert_eq!(m.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn blocked_matmul_matches_naive_beyond_one_k_block() {
        // 2 × 150 · 150 × 3 spans three K-panels; the blocked kernel must
        // agree bit-for-bit with a scalar reference loop (same ascending-K
        // accumulation order per output element).
        let (n, k, m) = (2, 150, 3);
        let a = Matrix::from_vec(n, k, (0..n * k).map(|i| (i as f32).sin()).collect());
        let b = Matrix::from_vec(k, m, (0..k * m).map(|i| (i as f32).cos()).collect());
        let mut reference = Matrix::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.get(i, kk) * b.get(kk, j);
                }
                reference.set(i, j, acc);
            }
        }
        assert_eq!(a.matmul(&b), reference);
    }

    #[test]
    fn into_kernels_reuse_and_reshape_scratch() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut out = Matrix::zeros(5, 7); // wrong shape + stale contents
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // Reuse the same scratch for a fused bias and bias+activation pass.
        a.matmul_bias_into(&b, &[0.5, -0.5], &mut out);
        let mut expected = a.matmul(&b);
        expected.add_row_broadcast(&[0.5, -0.5]);
        assert_eq!(out, expected);
        a.matmul_bias_act_into(&b, &[0.5, -0.5], &mut out, |x| x.max(0.0));
        assert_eq!(out, expected.map(|x| x.max(0.0)));
    }

    #[test]
    fn acc_kernels_accumulate_on_top() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let mut out = Matrix::full(2, 2, 10.0);
        a.matmul_acc(&b, &mut out);
        assert_eq!(out.as_slice(), &[11.0, 12.0, 13.0, 14.0]);
        let mut gt = Matrix::full(2, 2, 1.0);
        a.t_matmul_acc(&b, &mut gt);
        let mut expected = a.t_matmul(&b);
        expected.axpy(1.0, &Matrix::full(2, 2, 1.0));
        assert_eq!(gt, expected);
    }

    #[test]
    fn map_and_hadamard() {
        let a = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        let relu = a.map(|x| x.max(0.0));
        assert_eq!(relu.as_slice(), &[1.0, 0.0, 3.0]);
        let h = a.hadamard(&relu);
        assert_eq!(h.as_slice(), &[1.0, 0.0, 9.0]);
    }

    // ---- SIMD-vs-scalar bit-exactness ----
    //
    // The lane-chunked kernels must agree with plain scalar reference
    // loops to the last bit, for every shape — including ragged tails
    // that don't divide the lane width or the column block. Proptests
    // sweep shapes around those boundaries.

    mod simd_bit_exact {
        use super::*;
        use proptest::prelude::*;

        /// Deterministic "random" fill: varied exponents/signs, no RNG.
        fn filled(rows: usize, cols: usize, salt: u32) -> Matrix {
            let data = (0..rows * cols)
                .map(|i| ((i as f32) + salt as f32 * 0.618).sin() * 3.7)
                .collect();
            Matrix::from_vec(rows, cols, data)
        }

        /// Naive ascending-K matmul — the order contract.
        fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
            let mut out = Matrix::zeros(a.rows(), b.cols());
            for i in 0..a.rows() {
                for j in 0..b.cols() {
                    let mut acc = 0.0f32;
                    for kk in 0..a.cols() {
                        acc += a.get(i, kk) * b.get(kk, j);
                    }
                    out.set(i, j, acc);
                }
            }
            out
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

            #[test]
            fn simd_matmul_bit_exact(n in 1usize..6, k in 1usize..80, m in 1usize..20, salt in 0u32..100) {
                let a = filled(n, k, salt);
                let b = filled(k, m, salt.wrapping_add(1));
                prop_assert_eq!(
                    a.matmul(&b).as_slice(),
                    naive_matmul(&a, &b).as_slice(),
                    "lane-chunked matmul drifted from the scalar reference"
                );
            }

            #[test]
            fn simd_matmul_t_bit_exact(n in 1usize..6, k in 1usize..40, m in 1usize..20, salt in 0u32..100) {
                let a = filled(n, k, salt);
                let bt = filled(m, k, salt.wrapping_add(2)); // B already transposed: m×k
                // Reference: materialize the transpose and naive-matmul.
                let mut b = Matrix::zeros(k, m);
                for j in 0..m {
                    for kk in 0..k {
                        b.set(kk, j, bt.get(j, kk));
                    }
                }
                prop_assert_eq!(
                    a.matmul_t(&bt).as_slice(),
                    naive_matmul(&a, &b).as_slice(),
                    "register-blocked matmul_t drifted from the scalar reference"
                );
            }

            #[test]
            fn simd_t_matmul_bit_exact(n in 1usize..40, k in 1usize..12, m in 1usize..20, salt in 0u32..100) {
                let a = filled(n, k, salt);
                let b = filled(n, m, salt.wrapping_add(3));
                // Reference: materialize aᵀ and naive-matmul.
                let mut at = Matrix::zeros(k, n);
                for i in 0..n {
                    for kk in 0..k {
                        at.set(kk, i, a.get(i, kk));
                    }
                }
                prop_assert_eq!(
                    a.t_matmul(&b).as_slice(),
                    naive_matmul(&at, &b).as_slice(),
                    "lane-chunked t_matmul drifted from the scalar reference"
                );
            }

            #[test]
            fn simd_axpy_bit_exact(len in 1usize..70, alpha in -3.0f32..3.0, salt in 0u32..100) {
                let mut x = filled(1, len, salt);
                let y = filled(1, len, salt.wrapping_add(4));
                let expected: Vec<f32> = x
                    .as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .map(|(&a, &b)| a + alpha * b)
                    .collect();
                x.axpy(alpha, &y);
                prop_assert_eq!(x.as_slice(), &expected[..]);
            }
        }
    }
}
