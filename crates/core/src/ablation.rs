//! Ablation comparators for DeepPower's design choices.
//!
//! [`FlatDrlGovernor`] removes the hierarchy (§3.2's central design
//! argument): the DDPG agent still acts once per `LongTime`, but its
//! action is a *single socket-wide frequency* held constant for the whole
//! interval — there is no thread controller reacting per millisecond to
//! each request's elapsed time. Everything else (state, reward, replay,
//! training cadence) is identical, so any gap against
//! [`crate::DeepPowerGovernor`] isolates the value of hierarchical
//! control.

use crate::config::DeepPowerConfig;
use crate::governor::Mode;
use crate::reward::RewardCalculator;
use crate::state::{StateObserver, STATE_DIM};
use deeppower_drl::{Ddpg, Transition};
use deeppower_simd_server::{FreqCommands, FreqPlan, Governor, Nanos, ServerView};

/// DRL-only control: one frequency per DRL interval, no bottom layer.
pub struct FlatDrlGovernor<'a> {
    agent: &'a mut Ddpg,
    cfg: DeepPowerConfig,
    observer: StateObserver,
    reward: RewardCalculator,
    mode: Mode,
    plan: FreqPlan,
    ticks_per_long: u64,
    tick_count: u64,
    pending: Option<([f32; STATE_DIM], Vec<f32>)>,
    /// Start of the open DRL window (`None` before the first step) — same
    /// elapsed-interval accounting as [`crate::DeepPowerGovernor`].
    last_step_t: Option<Nanos>,
    current_mhz: u32,
    pub updates_done: u64,
}

impl<'a> FlatDrlGovernor<'a> {
    pub fn new(agent: &'a mut Ddpg, cfg: DeepPowerConfig, plan: FreqPlan, mode: Mode) -> Self {
        cfg.validate().expect("invalid config");
        assert_eq!(agent.cfg.state_dim, STATE_DIM);
        let current_mhz = plan.max_mhz();
        Self {
            observer: StateObserver::new(cfg.state_norm),
            reward: RewardCalculator::new(cfg.alpha, cfg.beta, cfg.gamma_q, cfg.eta),
            mode,
            ticks_per_long: cfg.ticks_per_long(),
            tick_count: 0,
            pending: None,
            last_step_t: None,
            current_mhz,
            updates_done: 0,
            plan,
            agent,
            cfg,
        }
    }

    fn drl_step(&mut self, view: &ServerView<'_>) {
        let next_state = self.observer.observe(view);
        self.close_window(view, &next_state, false);
        let action = match self.mode {
            Mode::Train => self.agent.act_explore(&next_state),
            Mode::Eval => self.agent.act(&next_state),
        };
        // Only action[0] matters: the socket frequency. action[1] is kept
        // so the same 2-output actor architecture is reused.
        self.current_mhz = self.plan.interpolate(action[0]);
        self.pending = Some((next_state, action));
        self.last_step_t = Some(view.now);
    }

    /// Same window accounting as `DeepPowerGovernor::close_window`: the
    /// first step only latches counters; later steps reward over the
    /// actually-elapsed interval and emit the pending transition.
    fn close_window(&mut self, view: &ServerView<'_>, next_state: &[f32; STATE_DIM], done: bool) {
        let Some(t0) = self.last_step_t else {
            self.reward.latch(
                view.energy_uj,
                view.total_timeouts,
                view.total_arrived,
                view.total_wasted,
                view.queue.len(),
            );
            return;
        };
        let elapsed = view.now.saturating_sub(t0).max(1);
        let (r, _) = self.reward.step(
            view.energy_uj,
            view.total_timeouts,
            view.total_arrived,
            view.total_wasted,
            view.queue.len(),
            elapsed,
        );
        if let Some((state, action)) = self.pending.take() {
            self.agent.observe(Transition {
                state: state.to_vec(),
                action,
                reward: r as f32,
                next_state: next_state.to_vec(),
                done,
            });
            if self.mode == Mode::Train && self.agent.ready() {
                for _ in 0..self.cfg.updates_per_step.max(1) {
                    self.agent.update();
                    self.updates_done += 1;
                }
            }
        }
    }
}

impl Governor for FlatDrlGovernor<'_> {
    fn on_tick(&mut self, view: &ServerView<'_>, cmds: &mut FreqCommands) {
        if self.tick_count.is_multiple_of(self.ticks_per_long) {
            self.drl_step(view);
        }
        self.tick_count += 1;
        cmds.set_all(self.current_mhz);
    }

    fn on_run_end(&mut self, view: &ServerView<'_>) {
        if self.pending.is_none() {
            return;
        }
        let next_state = self.observer.observe(view);
        self.close_window(view, &next_state, true);
        self.last_step_t = Some(view.now);
    }

    fn name(&self) -> &str {
        "flat-drl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deeppower_drl::DdpgConfig;
    use deeppower_simd_server::{RunOptions, Server, ServerConfig, MILLISECOND, SECOND};
    use deeppower_workload::{constant_rate_arrivals, App, AppSpec};

    #[test]
    fn flat_governor_holds_one_frequency_per_interval() {
        let mut agent = Ddpg::new(DdpgConfig {
            state_dim: STATE_DIM,
            action_dim: 2,
            warmup: 1_000_000,
            seed: 2,
            ..Default::default()
        });
        let cfg = DeepPowerConfig {
            long_time: 50 * MILLISECOND,
            ..Default::default()
        };
        let mut gov =
            FlatDrlGovernor::new(&mut agent, cfg, FreqPlan::xeon_gold_5218r(), Mode::Eval);
        let spec = AppSpec::get(App::Xapian);
        let arrivals = constant_rate_arrivals(&spec, 2000.0, SECOND, 1);
        let server = Server::new(ServerConfig::paper_default(8));
        let res = server.run(
            &arrivals,
            &mut gov,
            RunOptions {
                tick_ns: MILLISECOND,
                trace: deeppower_simd_server::TraceConfig::millisecond(),
                ..Default::default()
            },
        );
        // All cores share one frequency at every sample instant.
        let mut by_time: std::collections::HashMap<u64, Vec<u32>> = Default::default();
        for &(t, _, f) in &res.traces.freq {
            by_time.entry(t).or_default().push(f);
        }
        for (t, freqs) in by_time {
            assert!(
                freqs.iter().all(|&f| f == freqs[0]),
                "cores diverged at t={t}: {freqs:?}"
            );
        }
    }

    #[test]
    fn flat_governor_trains_without_panic() {
        let mut agent = Ddpg::new(DdpgConfig {
            state_dim: STATE_DIM,
            action_dim: 2,
            warmup: 4,
            batch_size: 8,
            seed: 3,
            ..Default::default()
        });
        let cfg = DeepPowerConfig {
            long_time: 100 * MILLISECOND,
            ..Default::default()
        };
        let mut gov =
            FlatDrlGovernor::new(&mut agent, cfg, FreqPlan::xeon_gold_5218r(), Mode::Train);
        let spec = AppSpec::get(App::Xapian);
        let arrivals = constant_rate_arrivals(&spec, 2000.0, 2 * SECOND, 4);
        let server = Server::new(ServerConfig::paper_default(8));
        let _ = server.run(&arrivals, &mut gov, RunOptions::default());
        assert!(gov.updates_done > 0);
    }
}
