//! # deeppower-core
//!
//! The DeepPower framework (Zhang et al., ICPP 2023): deep-reinforcement-
//! learning-based hierarchical power management for latency-critical
//! applications on multi-core servers.
//!
//! Architecture (paper Fig. 3):
//!
//! ```text
//!            ┌───────────────────────────────────────────────┐
//!            │                DeepPower framework            │
//!            │   StateObserver ──► DDPG agent ──► action     │
//!            │        ▲          (1 s "LongTime")   │        │
//!            │        │                             ▼        │
//!            │  RewardCalculator ◄── PowerMonitor  ThreadController
//!            │        ▲                            (1 ms "ShortTime")
//!            └────────┼──────────────────────────────┼───────┘
//!                     │  counters, queue, energy     │ per-core DVFS
//!            ┌────────┴──────────────────────────────▼───────┐
//!            │        latency-critical server (simd-server)  │
//!            └───────────────────────────────────────────────┘
//! ```
//!
//! * [`ThreadController`] — Algorithm 1: maps each core's elapsed request
//!   time through `score = consumed/SLA · ScalingCoef + BaseFreq` to a
//!   frequency every `ShortTime`; `score ≥ 1` commands turbo.
//! * [`StateObserver`] — §4.4.1's 8-dimensional workload state
//!   (`NumReq, QueueLen, Queue25/50/75, Core25/50/75`), normalized.
//! * [`RewardCalculator`] — §4.4.2's
//!   `R = −(α·R_energy + β·R_timeout + γ·R_queue)` with the
//!   queue-growth penalty gated by [`scale_func`].
//! * [`DeepPowerGovernor`] — the hierarchical control loop: thread
//!   controller ticks every `ShortTime`, the DRL step (observe → reward →
//!   replay push → act → retrain) every `LongTime`.
//! * [`train::train`] — Algorithm 2's training driver over simulated
//!   workloads; produces a serializable [`TrainedPolicy`].

pub mod ablation;
pub mod config;
pub mod explain;
pub mod governor;
pub mod reward;
pub mod safety;
pub mod sleep;
pub mod state;
pub mod thread_controller;
pub mod train;

pub use ablation::FlatDrlGovernor;
pub use config::{DeepPowerConfig, StateNorm};
pub use explain::{
    action_surface, decisions_to_csv, decisions_to_jsonl, explain_decisions, mean_abs_saliency,
    saliency_at, surface_to_csv, ActionOut, DecisionExplanation, SurfacePoint, STATE_DIM_NAMES,
};
pub use governor::{DeepPowerGovernor, Mode, StepLog};
pub use reward::{scale_func, RewardCalculator, RewardTerms};
pub use safety::{SafetyConfig, SafetyGovernor};
pub use sleep::{SleepAware, SleepPolicy};
pub use state::{StateObserver, STATE_DIM};
pub use thread_controller::{ControllerParams, ThreadController};
pub use train::{
    evaluate, evaluate_profiled, evaluate_recorded, train, train_profiled, train_recorded,
    EvalOutcome, TrainConfig, TrainReport, TrainedPolicy,
};
