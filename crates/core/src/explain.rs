//! Policy introspection — *why* did the agent move?
//!
//! Three views into a trained (or untrained) DDPG agent, all pure
//! functions of the agent's weights:
//!
//! * [`action_surface`] — per-dimension 1-D sweeps of the actor over the
//!   normalized state domain `[0, 2]`: how `(BaseFreq, ScalingCoef)`
//!   responds as each state component moves while the others sit at a
//!   base point.
//! * [`saliency_at`] — central finite-difference sensitivity
//!   `∂ action_k / ∂ state_d` of both action heads to each of the 8
//!   state dimensions, at one state.
//! * [`explain_decisions`] — annotate an evaluation's [`StepLog`]
//!   trajectory: for every visited state, the deterministic action, the
//!   critic's `Q(s, π(s))`, and the full per-dimension saliency. The
//!   raw material for a Fig. 4-style decision trace annotated with
//!   *why* the agent moved.
//!
//! CSV/JSONL writers live here too so the CLI `explain` subcommand and
//! tests share one schema.

use crate::governor::StepLog;
use crate::state::STATE_DIM;
use deeppower_drl::Ddpg;
use deeppower_simd_server::Nanos;
use serde::{Deserialize, Serialize};

/// Paper names of the 8 state components, in observation order.
pub const STATE_DIM_NAMES: [&str; STATE_DIM] = [
    "NumReq", "QueueLen", "Queue25", "Queue50", "Queue75", "Core25", "Core50", "Core75",
];

/// Both action heads, as the actor emits them (normalized to `[0, 1]`).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ActionOut {
    pub base_freq: f32,
    pub scaling_coef: f32,
}

fn act(agent: &Ddpg, state: &[f32; STATE_DIM]) -> ActionOut {
    let a = agent.act(state);
    ActionOut {
        base_freq: a[0],
        scaling_coef: a[1],
    }
}

/// One sample of the actor's response surface: state dimension `dim`
/// set to `value` (all other dimensions at the sweep's base point).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SurfacePoint {
    pub dim: usize,
    pub value: f32,
    pub base_freq: f32,
    pub scaling_coef: f32,
}

/// Sweep every state dimension over the normalized domain `[0, 2]`
/// (`points ≥ 2` samples per dimension, endpoints included), holding
/// the other dimensions at `base`.
pub fn action_surface(agent: &Ddpg, base: &[f32; STATE_DIM], points: usize) -> Vec<SurfacePoint> {
    let points = points.max(2);
    let mut out = Vec::with_capacity(STATE_DIM * points);
    for dim in 0..STATE_DIM {
        let mut state = *base;
        for i in 0..points {
            let value = 2.0 * i as f32 / (points - 1) as f32;
            state[dim] = value;
            let a = act(agent, &state);
            out.push(SurfacePoint {
                dim,
                value,
                base_freq: a.base_freq,
                scaling_coef: a.scaling_coef,
            });
        }
    }
    out
}

/// Central finite-difference saliency at `state`: element `d` holds
/// `(∂ BaseFreq / ∂ s_d, ∂ ScalingCoef / ∂ s_d)`, estimated with
/// perturbation `±eps` (clamped into the actor's `[0, 2]` input domain
/// so the probe never leaves the region the network was trained on;
/// the divisor uses the *actual* probe distance, keeping the estimate
/// unbiased at the domain edges).
pub fn saliency_at(agent: &Ddpg, state: &[f32; STATE_DIM], eps: f32) -> [[f32; 2]; STATE_DIM] {
    assert!(eps > 0.0, "saliency needs a positive probe step");
    let mut out = [[0.0f32; 2]; STATE_DIM];
    for (d, slot) in out.iter_mut().enumerate() {
        let hi = (state[d] + eps).min(2.0);
        let lo = (state[d] - eps).max(0.0);
        let dx = hi - lo;
        if dx <= 0.0 {
            continue;
        }
        let mut s_hi = *state;
        s_hi[d] = hi;
        let mut s_lo = *state;
        s_lo[d] = lo;
        let (a_hi, a_lo) = (act(agent, &s_hi), act(agent, &s_lo));
        slot[0] = (a_hi.base_freq - a_lo.base_freq) / dx;
        slot[1] = (a_hi.scaling_coef - a_lo.scaling_coef) / dx;
    }
    out
}

/// One annotated decision along a visited trajectory.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DecisionExplanation {
    /// Step-boundary time of the source [`StepLog`] row.
    pub t: Nanos,
    pub state: [f32; STATE_DIM],
    /// The deterministic action replayed from `state` (matches the
    /// logged action on eval rows; training rows carry exploration
    /// noise the replay strips away).
    pub action: ActionOut,
    /// `Q(state, action)` under the agent's critic.
    pub q_value: f32,
    /// Per-dimension action sensitivity at `state` (see [`saliency_at`]).
    pub saliency: [[f32; 2]; STATE_DIM],
}

/// Annotate every row of an evaluation log with action, Q-value and
/// saliency.
pub fn explain_decisions(agent: &Ddpg, log: &[StepLog], eps: f32) -> Vec<DecisionExplanation> {
    log.iter()
        .map(|row| {
            let action = act(agent, &row.state);
            let q_value = agent.q_value(&row.state, &[action.base_freq, action.scaling_coef]);
            DecisionExplanation {
                t: row.t,
                state: row.state,
                action,
                q_value,
                saliency: saliency_at(agent, &row.state, eps),
            }
        })
        .collect()
}

/// Mean absolute saliency per state dimension over a set of decisions
/// (L1 across the two action heads) — the "which inputs drive this
/// policy" ranking.
pub fn mean_abs_saliency(decisions: &[DecisionExplanation]) -> [f32; STATE_DIM] {
    let mut acc = [0.0f32; STATE_DIM];
    if decisions.is_empty() {
        return acc;
    }
    for d in decisions {
        for (i, s) in d.saliency.iter().enumerate() {
            acc[i] += s[0].abs() + s[1].abs();
        }
    }
    for a in &mut acc {
        *a /= decisions.len() as f32;
    }
    acc
}

/// CSV header for [`decisions_to_csv`].
pub fn decision_csv_header() -> String {
    let mut h = String::from("t");
    for name in STATE_DIM_NAMES {
        h.push_str(&format!(",{name}"));
    }
    h.push_str(",base_freq,scaling_coef,q_value");
    for name in STATE_DIM_NAMES {
        h.push_str(&format!(",sal_{name}"));
    }
    h.push('\n');
    h
}

/// Decision explanations as CSV. The saliency columns collapse the two
/// action heads into one magnitude per dimension (`|∂BaseFreq| +
/// |∂ScalingCoef|`); the JSONL artifact keeps the full per-head values.
pub fn decisions_to_csv(decisions: &[DecisionExplanation]) -> String {
    let mut out = decision_csv_header();
    for d in decisions {
        out.push_str(&format!("{}", d.t));
        for s in d.state {
            out.push_str(&format!(",{s}"));
        }
        out.push_str(&format!(
            ",{},{},{}",
            d.action.base_freq, d.action.scaling_coef, d.q_value
        ));
        for s in d.saliency {
            out.push_str(&format!(",{}", s[0].abs() + s[1].abs()));
        }
        out.push('\n');
    }
    out
}

/// Decision explanations as JSONL, one object per decision.
pub fn decisions_to_jsonl(decisions: &[DecisionExplanation]) -> String {
    let mut out = String::new();
    for d in decisions {
        out.push_str(&serde_json::to_string(d).expect("serialize decision"));
        out.push('\n');
    }
    out
}

/// Action-surface sweep as CSV (`dim,name,value,base_freq,scaling_coef`).
pub fn surface_to_csv(points: &[SurfacePoint]) -> String {
    let mut out = String::from("dim,name,value,base_freq,scaling_coef\n");
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            p.dim, STATE_DIM_NAMES[p.dim], p.value, p.base_freq, p.scaling_coef
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::RewardTerms;
    use deeppower_drl::DdpgConfig;

    fn agent() -> Ddpg {
        Ddpg::new(DdpgConfig {
            state_dim: STATE_DIM,
            action_dim: 2,
            seed: 42,
            ..Default::default()
        })
    }

    fn log_row(t: Nanos, state: [f32; STATE_DIM]) -> StepLog {
        StepLog {
            t,
            state,
            num_req: 0,
            power_w: 0.0,
            base_freq: 0.0,
            scaling_coef: 0.0,
            admit_frac: 1.0,
            avg_freq_mhz: 0.0,
            queue_len: 0,
            timeouts: 0,
            reward: 0.0,
            terms: RewardTerms::default(),
        }
    }

    #[test]
    fn surface_covers_every_dim_with_endpoints() {
        let a = agent();
        let pts = action_surface(&a, &[0.5; STATE_DIM], 5);
        assert_eq!(pts.len(), STATE_DIM * 5);
        for dim in 0..STATE_DIM {
            let vals: Vec<f32> = pts
                .iter()
                .filter(|p| p.dim == dim)
                .map(|p| p.value)
                .collect();
            assert_eq!(vals.first(), Some(&0.0));
            assert_eq!(vals.last(), Some(&2.0));
        }
        // Every sample must reproduce the raw actor output.
        for p in &pts {
            let mut s = [0.5f32; STATE_DIM];
            s[p.dim] = p.value;
            let raw = a.act(&s);
            assert_eq!(p.base_freq.to_bits(), raw[0].to_bits());
            assert_eq!(p.scaling_coef.to_bits(), raw[1].to_bits());
        }
    }

    #[test]
    fn saliency_is_finite_and_not_all_zero() {
        let a = agent();
        let sal = saliency_at(&a, &[0.7; STATE_DIM], 0.05);
        assert!(sal.iter().flatten().all(|v| v.is_finite()));
        assert!(
            sal.iter().flatten().any(|v| v.abs() > 0.0),
            "an untrained network still has nonzero gradients almost everywhere"
        );
    }

    #[test]
    fn saliency_probe_respects_domain_edges() {
        let a = agent();
        // At both domain edges the probe must stay inside [0, 2] and
        // still produce a finite one-sided-ish estimate.
        for s in [0.0f32, 2.0] {
            let sal = saliency_at(&a, &[s; STATE_DIM], 0.05);
            assert!(sal.iter().flatten().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn explanations_align_with_log_and_round_trip_jsonl() {
        let a = agent();
        let log = vec![
            log_row(1_000_000, [0.1; STATE_DIM]),
            log_row(2_000_000, [1.5; STATE_DIM]),
        ];
        let dec = explain_decisions(&a, &log, 0.05);
        assert_eq!(dec.len(), 2);
        assert_eq!(dec[0].t, 1_000_000);
        assert!(dec.iter().all(|d| d.q_value.is_finite()));
        // Saliency varies across rows (different states, same net).
        assert_ne!(
            dec[0].saliency[0][0].to_bits(),
            dec[1].saliency[0][0].to_bits()
        );

        let jsonl = decisions_to_jsonl(&dec);
        assert_eq!(jsonl.lines().count(), 2);
        let back: DecisionExplanation =
            serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(back.t, dec[0].t);
        assert_eq!(back.q_value.to_bits(), dec[0].q_value.to_bits());
        assert_eq!(back.saliency, dec[0].saliency);

        let csv = decisions_to_csv(&dec);
        let header_cols = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), header_cols);
        }
        // 1 t + 8 state + 2 action + 1 q + 8 saliency.
        assert_eq!(header_cols, 1 + STATE_DIM + 3 + STATE_DIM);
    }

    #[test]
    fn mean_abs_saliency_averages_rows() {
        let a = agent();
        let log = vec![log_row(1, [0.4; STATE_DIM]), log_row(2, [0.9; STATE_DIM])];
        let dec = explain_decisions(&a, &log, 0.05);
        let mean = mean_abs_saliency(&dec);
        assert!(mean.iter().any(|v| *v > 0.0), "degenerate saliency");
        let spread = mean.iter().cloned().fold(f32::MIN, f32::max)
            - mean.iter().cloned().fold(f32::MAX, f32::min);
        assert!(spread > 0.0, "saliency identical across all state dims");
    }
}
