//! DeepPower configuration.

use deeppower_drl::DdpgConfig;
use deeppower_simd_server::{Nanos, MILLISECOND, SECOND};
use serde::{Deserialize, Serialize};

/// Normalization caps for the 8-dimensional state vector (§4.4.1 asks for
/// "a normalized state vector"; the caps put every component on a roughly
/// unit scale so the small actor MLP trains well).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StateNorm {
    /// Expected arrivals per `LongTime` at full load (NumReq divisor).
    pub num_req_cap: f32,
    /// Queue-length divisor (QueueLen and QueueX).
    pub queue_cap: f32,
    /// Core-count divisor (CoreX) — the number of worker threads.
    pub core_cap: f32,
}

impl Default for StateNorm {
    fn default() -> Self {
        Self {
            num_req_cap: 1000.0,
            queue_cap: 200.0,
            core_cap: 20.0,
        }
    }
}

/// All DeepPower hyper-parameters. Paper defaults throughout (§4.4, §4.6).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DeepPowerConfig {
    /// Thread-controller period (`ShortTime`, 1 ms default).
    pub short_time: Nanos,
    /// DRL decision period (`LongTime`, 1 s default).
    pub long_time: Nanos,
    /// Reward weight on energy.
    pub alpha: f64,
    /// Reward weight on timeouts.
    pub beta: f64,
    /// Reward weight on queue growth.
    pub gamma_q: f64,
    /// Reward weight on wasted work — completions whose client already
    /// abandoned (overload co-management extension). `0.0` keeps the
    /// paper's three-term reward bit-identically.
    pub kappa: f64,
    /// Queue-penalty threshold η of `scaleFunc` (§4.4.2; Fig. 5 uses 100).
    pub eta: f64,
    pub state_norm: StateNorm,
    /// DDPG gradient updates performed per DRL step (the paper does one;
    /// more squeezes extra learning out of short simulated episodes).
    pub updates_per_step: u32,
    pub ddpg: DdpgConfig,
}

impl Default for DeepPowerConfig {
    fn default() -> Self {
        Self {
            short_time: MILLISECOND,
            long_time: SECOND,
            alpha: 1.0,
            beta: 4.0,
            gamma_q: 1.0,
            kappa: 0.0,
            eta: 100.0,
            state_norm: StateNorm::default(),
            updates_per_step: 1,
            ddpg: DdpgConfig::default(),
        }
    }
}

impl DeepPowerConfig {
    /// Scale the state caps and controller cadence to an application: the
    /// paper notes `ShortTime`/`LongTime` "can be changed according to the
    /// service time of different applications" (§4.6). Long-service apps
    /// (Sphinx) use a coarser controller tick; caps follow the app's
    /// capacity.
    pub fn for_app(n_threads: usize, capacity_rps: f64, mean_service_ns: f64) -> Self {
        let mut cfg = Self::default();
        cfg.state_norm.core_cap = n_threads as f32;
        cfg.state_norm.num_req_cap = (capacity_rps * cfg.long_time as f64 / SECOND as f64) as f32;
        cfg.state_norm.queue_cap = (cfg.state_norm.num_req_cap * 0.2).max(50.0);
        // Controller period ≈ service time / 5, clamped to [1 ms, 100 ms].
        let st = (mean_service_ns / 5.0) as Nanos;
        cfg.short_time = st.clamp(MILLISECOND, 100 * MILLISECOND);
        cfg.eta = (cfg.state_norm.queue_cap as f64 * 0.5).max(20.0);
        cfg
    }

    /// Ticks of the thread controller per DRL step.
    pub fn ticks_per_long(&self) -> u64 {
        (self.long_time / self.short_time).max(1)
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.short_time == 0 || self.long_time == 0 {
            return Err("control periods must be positive".into());
        }
        if self.long_time < self.short_time {
            return Err("LongTime must be >= ShortTime".into());
        }
        if self.alpha < 0.0 || self.beta < 0.0 || self.gamma_q < 0.0 || self.kappa < 0.0 {
            return Err("reward weights must be non-negative".into());
        }
        if self.eta <= 0.0 {
            return Err("eta must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = DeepPowerConfig::default();
        assert_eq!(c.short_time, MILLISECOND);
        assert_eq!(c.long_time, SECOND);
        assert_eq!(c.ticks_per_long(), 1000);
        assert_eq!(c.eta, 100.0);
        c.validate().unwrap();
    }

    #[test]
    fn for_app_scales_caps_and_cadence() {
        // Sphinx-like: 20 threads, 620 ms mean service → coarse ticks.
        let c = DeepPowerConfig::for_app(20, 32.0, 620.0 * MILLISECOND as f64);
        assert_eq!(c.short_time, 100 * MILLISECOND);
        assert_eq!(c.state_norm.core_cap, 20.0);
        assert!((c.state_norm.num_req_cap - 32.0).abs() < 1.0);
        c.validate().unwrap();
        // Masstree-like: sub-ms service clamps to 1 ms.
        let c = DeepPowerConfig::for_app(8, 94_000.0, 85_000.0);
        assert_eq!(c.short_time, MILLISECOND);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let d = DeepPowerConfig::default();
        let c = DeepPowerConfig {
            long_time: d.short_time / 2,
            ..d
        };
        assert!(c.validate().is_err());
        let c = DeepPowerConfig { eta: 0.0, ..d };
        assert!(c.validate().is_err());
        let c = DeepPowerConfig { beta: -1.0, ..d };
        assert!(c.validate().is_err());
    }
}
