//! Training and evaluation drivers — Algorithm 2 end to end.
//!
//! [`train`] runs the DDPG agent against simulated episodes of the target
//! application under diurnal load (the paper trains "with a long running
//! workload and save[s] the neural network parameters after training"),
//! returning a serializable [`TrainedPolicy`]. [`evaluate`] replays a
//! trained policy on a fresh workload and reports the paper's metrics
//! (power, latency percentiles, timeout rate) plus the per-second
//! telemetry behind Fig. 8.

use crate::config::DeepPowerConfig;
use crate::governor::{DeepPowerGovernor, Mode, StepLog};
use crate::state::STATE_DIM;
use deeppower_drl::{Ddpg, DdpgConfig};
use deeppower_simd_server::{RunOptions, Server, ServerConfig, SimResult, TraceConfig};
use deeppower_telemetry::{event, Event, Profiler, Recorder};
use deeppower_workload::{trace_arrivals, App, AppSpec, DiurnalConfig, DiurnalTrace};
use serde::{Deserialize, Serialize};

/// Training-run parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    pub app: App,
    /// Number of workload episodes.
    pub episodes: usize,
    /// Episode length in seconds (the trace period).
    pub episode_s: u64,
    /// Peak trace RPS as a fraction of the app's capacity (the paper
    /// scales the trace "to make the tail latency close to SLA when
    /// running without frequency scaling").
    pub peak_load: f64,
    pub seed: u64,
    pub deeppower: DeepPowerConfig,
}

impl TrainConfig {
    /// Sensible defaults for `app`: per-app state caps and cadence, DDPG
    /// defaults, 0.9 peak load.
    pub fn for_app(app: App) -> Self {
        let spec = AppSpec::get(app);
        let mut dp =
            DeepPowerConfig::for_app(spec.n_threads, spec.capacity_rps(), spec.mean_service_ns);
        dp.ddpg = DdpgConfig {
            state_dim: STATE_DIM,
            action_dim: 2,
            warmup: 32,
            noise_decay: 0.995,
            ..Default::default()
        };
        dp.updates_per_step = 2;
        let (alpha, beta, gamma_q) = default_reward_weights(app);
        dp.alpha = alpha;
        dp.beta = beta;
        dp.gamma_q = gamma_q;
        Self {
            app,
            episodes: 6,
            episode_s: 120,
            peak_load: default_peak_load(app),
            seed: 0,
            deeppower: dp,
        }
    }
}

/// Per-app reward-weight presets. §4.4.2: "Changing the weight of each
/// term leads to adjusting the DRL Agent's training objectives" — the
/// energy weight α is raised for the applications whose service times are
/// predictable enough (Moses' observable body, Img-dnn's near-determinism)
/// that the agent would otherwise sit too far on the safe side of the
/// power/QoS frontier.
pub fn default_reward_weights(app: App) -> (f64, f64, f64) {
    match app {
        App::Moses | App::ImgDnn => (3.0, 4.0, 1.0),
        _ => (1.0, 4.0, 1.0),
    }
}

/// The trace scaling of §5.2: peak RPS as a fraction of capacity chosen so
/// the *unmanaged* baseline's tail latency lands just under the SLA
/// (calibrated empirically against the simulator's contention model).
pub fn default_peak_load(app: App) -> f64 {
    match app {
        App::Xapian => 0.72,
        App::Masstree => 0.72,
        App::Moses => 0.78,
        App::Sphinx => 0.80,
        App::ImgDnn => 0.70,
    }
}

/// Per-episode training diagnostics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean per-step reward of each episode.
    pub episode_rewards: Vec<f64>,
    /// Mean power of each episode (watts).
    pub episode_power_w: Vec<f64>,
    /// Timeout rate of each episode.
    pub episode_timeout_rate: Vec<f64>,
    /// Total DDPG updates performed.
    pub updates: u64,
}

/// A trained DeepPower policy: the actor and critic weights plus the
/// configs needed to reconstruct the agent. Serializable (JSON) for
/// checkpointing. The critic rides along so introspection tools
/// (`deeppower explain`) can query the trained Q-function from a
/// checkpoint, not just the policy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainedPolicy {
    pub app: App,
    pub actor_weights: Vec<f32>,
    pub critic_weights: Vec<f32>,
    pub ddpg: DdpgConfig,
    pub deeppower: DeepPowerConfig,
}

impl TrainedPolicy {
    /// Reconstruct a (deterministic) agent carrying these weights.
    pub fn build_agent(&self) -> Ddpg {
        let mut agent = Ddpg::new(self.ddpg);
        agent.load_actor_snapshot(&self.actor_weights);
        if !self.critic_weights.is_empty() {
            agent.load_critic_snapshot(&self.critic_weights);
        }
        agent
    }

    /// Checkpoint to `path` atomically (temp file + rename): a crash
    /// mid-save can never leave a torn checkpoint behind.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        deeppower_telemetry::atomic_write(
            path,
            serde_json::to_string(self).expect("serialize policy"),
        )
    }

    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let data = std::fs::read_to_string(path)?;
        serde_json::from_str(&data)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Build the server matching an app's testbed slice (its worker threads on
/// socket 0).
pub fn server_for(spec: &AppSpec) -> Server {
    Server::new(ServerConfig::paper_default(spec.n_threads))
}

/// Build a diurnal trace for an app at `peak_load`, seeded.
pub fn trace_for(spec: &AppSpec, peak_load: f64, episode_s: u64, seed: u64) -> DiurnalTrace {
    let cfg = DiurnalConfig {
        period_s: episode_s,
        ..Default::default()
    };
    let mut trace = DiurnalTrace::generate(&cfg, seed);
    trace.scale_peak_to(spec.rps_for_load(peak_load));
    trace
}

/// Algorithm 2: train a DDPG agent for `cfg.app` and return the policy.
pub fn train(cfg: &TrainConfig) -> (TrainedPolicy, TrainReport) {
    train_recorded(cfg, &Recorder::disabled())
}

/// [`train`] with a telemetry [`Recorder`]: per-step
/// [`event::DrlStep`]/[`event::TrainUpdate`] events from the governor
/// plus one [`event::EpisodeEnd`] per episode.
pub fn train_recorded(cfg: &TrainConfig, rec: &Recorder) -> (TrainedPolicy, TrainReport) {
    train_profiled(cfg, rec, &Profiler::disabled())
}

/// [`train_recorded`] with a span [`Profiler`]: workload generation
/// opens `engine.ingest` spans, the engine its `engine.*` phase spans,
/// and the agent its `ddpg.*` update-stage spans (nested inside
/// `engine.tick`). Profiling never perturbs training.
pub fn train_profiled(
    cfg: &TrainConfig,
    rec: &Recorder,
    prof: &Profiler,
) -> (TrainedPolicy, TrainReport) {
    let spec = AppSpec::get(cfg.app);
    let server = server_for(&spec);
    let mut agent = Ddpg::new(DdpgConfig {
        seed: cfg.seed,
        ..cfg.deeppower.ddpg
    });
    agent.set_profiler(prof);
    let mut report = TrainReport::default();

    for ep in 0..cfg.episodes {
        let ep_seed = cfg.seed.wrapping_add(1 + ep as u64);
        let sp = prof.span("engine.ingest");
        let trace = trace_for(&spec, cfg.peak_load, cfg.episode_s, ep_seed);
        let arrivals = trace_arrivals(&spec, &trace, ep_seed.wrapping_mul(31).wrapping_add(7));
        drop(sp);
        let mut gov = DeepPowerGovernor::new(&mut agent, cfg.deeppower, Mode::Train)
            .with_recorder(rec.clone());
        let res = server.run_profiled(
            &arrivals,
            &mut gov,
            RunOptions {
                tick_ns: cfg.deeppower.short_time,
                trace: TraceConfig::default(),
                ..Default::default()
            },
            rec,
            prof,
        );
        let steps = gov.log.len().max(1) as f64;
        let mean_reward = gov.log.iter().map(|l| l.reward).sum::<f64>() / steps;
        report.episode_rewards.push(mean_reward);
        report.episode_power_w.push(res.avg_power_w);
        report.episode_timeout_rate.push(res.stats.timeout_rate());
        report.updates += gov.updates_done;
        let log_len = gov.log.len() as u64;
        drop(gov);
        rec.emit(|| {
            Event::EpisodeEnd(event::EpisodeEnd {
                episode: ep as u64,
                steps: log_len,
                mean_reward,
                avg_power_w: res.avg_power_w,
                timeout_rate: res.stats.timeout_rate(),
                updates: report.updates,
            })
        });
    }

    let policy = TrainedPolicy {
        app: cfg.app,
        actor_weights: agent.actor_snapshot(),
        critic_weights: agent.critic_snapshot(),
        ddpg: cfg.deeppower.ddpg,
        deeppower: cfg.deeppower,
    };
    (policy, report)
}

/// Evaluation output: the simulator's metrics plus DeepPower telemetry.
#[derive(Clone, Debug)]
pub struct EvalOutcome {
    pub sim: SimResult,
    pub log: Vec<StepLog>,
}

/// Run a trained policy on a fresh trace-driven workload.
pub fn evaluate(
    policy: &TrainedPolicy,
    peak_load: f64,
    duration_s: u64,
    seed: u64,
    trace_cfg: TraceConfig,
) -> EvalOutcome {
    evaluate_recorded(
        policy,
        peak_load,
        duration_s,
        seed,
        trace_cfg,
        &Recorder::disabled(),
    )
}

/// [`evaluate`] with a telemetry [`Recorder`] receiving the full
/// decision trace: per-step [`event::DrlStep`]s from the governor plus
/// the engine's frequency-transition/residency/latency-snapshot events
/// (and request marks when `trace_cfg.request_marks` is set).
pub fn evaluate_recorded(
    policy: &TrainedPolicy,
    peak_load: f64,
    duration_s: u64,
    seed: u64,
    trace_cfg: TraceConfig,
    rec: &Recorder,
) -> EvalOutcome {
    evaluate_profiled(
        policy,
        peak_load,
        duration_s,
        seed,
        trace_cfg,
        rec,
        &Profiler::disabled(),
    )
}

/// [`evaluate_recorded`] with a span [`Profiler`] attached to workload
/// generation (`engine.ingest`) and the engine (`engine.*` phases).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_profiled(
    policy: &TrainedPolicy,
    peak_load: f64,
    duration_s: u64,
    seed: u64,
    trace_cfg: TraceConfig,
    rec: &Recorder,
    prof: &Profiler,
) -> EvalOutcome {
    let spec = AppSpec::get(policy.app);
    let server = server_for(&spec);
    let sp = prof.span("engine.ingest");
    let trace = trace_for(&spec, peak_load, duration_s, seed);
    let arrivals = trace_arrivals(&spec, &trace, seed.wrapping_mul(131).wrapping_add(17));
    drop(sp);
    let mut agent = policy.build_agent();
    let mut gov =
        DeepPowerGovernor::new(&mut agent, policy.deeppower, Mode::Eval).with_recorder(rec.clone());
    let sim = server.run_profiled(
        &arrivals,
        &mut gov,
        RunOptions {
            tick_ns: policy.deeppower.short_time,
            trace: trace_cfg,
            ..Default::default()
        },
        rec,
        prof,
    );
    EvalOutcome {
        sim,
        log: std::mem::take(&mut gov.log),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_train_cfg() -> TrainConfig {
        let mut cfg = TrainConfig::for_app(App::Xapian);
        cfg.episodes = 2;
        cfg.episode_s = 10;
        cfg.peak_load = 0.6;
        cfg.seed = 3;
        cfg.deeppower.ddpg.warmup = 4;
        cfg.deeppower.ddpg.batch_size = 8;
        cfg
    }

    #[test]
    fn training_produces_policy_and_updates() {
        let (policy, report) = train(&tiny_train_cfg());
        assert_eq!(report.episode_rewards.len(), 2);
        assert!(report.updates > 0, "agent never trained");
        assert!(!policy.actor_weights.is_empty());
        // Weights must differ from a fresh agent (training moved them).
        let fresh = Ddpg::new(policy.ddpg);
        assert_ne!(policy.actor_weights, fresh.actor_snapshot());
    }

    #[test]
    fn policy_roundtrips_through_json() {
        let (policy, _) = train(&tiny_train_cfg());
        let dir = std::env::temp_dir().join("deeppower-test-policy.json");
        policy.save(&dir).unwrap();
        let loaded = TrainedPolicy::load(&dir).unwrap();
        assert_eq!(policy.actor_weights, loaded.actor_weights);
        assert_eq!(policy.app, loaded.app);
        std::fs::remove_file(&dir).ok();
        // Rebuilt agents act identically.
        let a = policy.build_agent();
        let b = loaded.build_agent();
        let s = [0.4f32; STATE_DIM];
        assert_eq!(a.act(&s), b.act(&s));
    }

    #[test]
    fn evaluation_runs_policy_deterministically() {
        let (policy, _) = train(&tiny_train_cfg());
        let e1 = evaluate(&policy, 0.6, 10, 99, TraceConfig::default());
        let e2 = evaluate(&policy, 0.6, 10, 99, TraceConfig::default());
        assert_eq!(e1.sim.energy_j, e2.sim.energy_j);
        assert_eq!(e1.sim.stats.count, e2.sim.stats.count);
        assert!(
            e1.sim.stats.count > 100,
            "workload too small to be meaningful"
        );
        assert!(!e1.log.is_empty());
    }

    #[test]
    fn recorded_runs_emit_events_without_perturbing_results() {
        let cfg = tiny_train_cfg();
        let (plain_policy, plain_report) = train(&cfg);
        let rec = Recorder::ring(1 << 16);
        let (rec_policy, rec_report) = train_recorded(&cfg, &rec);
        // Telemetry must not change training.
        assert_eq!(plain_policy.actor_weights, rec_policy.actor_weights);
        assert_eq!(plain_report.episode_rewards, rec_report.episode_rewards);
        let events = rec.drain_events();
        let count = |k: &str| events.iter().filter(|e| e.kind() == k).count();
        assert_eq!(count("EpisodeEnd"), cfg.episodes);
        assert!(count("DrlStep") > 0, "no DRL step events");
        assert!(count("TrainUpdate") > 0, "no training update events");

        // The thread controller can transition frequencies every tick on
        // every core (~80 k events over this 10 s / 8-core eval), so the
        // ring must be sized for tick_count × cores to keep everything.
        let rec2 = Recorder::ring(1 << 18);
        let plain_eval = evaluate(&rec_policy, 0.6, 10, 99, TraceConfig::default());
        let rec_eval = evaluate_recorded(&rec_policy, 0.6, 10, 99, TraceConfig::default(), &rec2);
        assert_eq!(plain_eval.sim.energy_j, rec_eval.sim.energy_j);
        let eval_events = rec2.drain_events();
        let steps = eval_events.iter().filter(|e| e.kind() == "DrlStep").count();
        assert_eq!(steps, rec_eval.log.len(), "one DrlStep event per StepLog");
        assert!(
            eval_events.iter().any(|e| e.kind() == "CoreResidency"),
            "residency missing from eval trace"
        );
    }

    #[test]
    fn profiled_training_matches_plain_and_checkpoints_critic() {
        let cfg = tiny_train_cfg();
        let (plain_policy, plain_report) = train(&cfg);
        let prof = Profiler::enabled();
        let (prof_policy, prof_report) = train_profiled(&cfg, &Recorder::disabled(), &prof);
        // Profiling must not change training.
        assert_eq!(plain_policy.actor_weights, prof_policy.actor_weights);
        assert_eq!(plain_policy.critic_weights, prof_policy.critic_weights);
        assert_eq!(plain_report.episode_rewards, prof_report.episode_rewards);
        assert!(!prof_policy.critic_weights.is_empty());

        let rows = prof.phase_table();
        let has = |n: &str| rows.iter().any(|r| r.name == n && r.count > 0);
        for n in [
            "engine.ingest",
            "engine.tick",
            "engine.advance",
            "ddpg.critic",
        ] {
            assert!(has(n), "missing {n} spans");
        }
        // DDPG stages run inside the governor tick, so they are never
        // root spans — summing root time across phases cannot double
        // count them.
        let ddpg = rows.iter().find(|r| r.name == "ddpg.critic").unwrap();
        assert_eq!(ddpg.root_ns, 0);

        // The checkpointed critic answers Q-queries identically after a
        // JSON round-trip.
        let dir = std::env::temp_dir().join(format!("deeppower-critic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("policy.json");
        prof_policy.save(&path).unwrap();
        let loaded = TrainedPolicy::load(&path).unwrap();
        assert_eq!(loaded.critic_weights, prof_policy.critic_weights);
        let (a, b) = (prof_policy.build_agent(), loaded.build_agent());
        let s = [0.4f32; STATE_DIM];
        let act = a.act(&s);
        assert_eq!(a.q_value(&s, &act).to_bits(), b.q_value(&s, &act).to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_training_nan_rolls_back_and_completes() {
        // Corrupt the bootstrap targets of one mid-run gradient update:
        // the agent must detect the divergence, roll back to the last
        // finite weights, and finish training with finite metrics.
        let mut cfg = tiny_train_cfg();
        cfg.deeppower.ddpg.inject_nan_update = 10;
        let rec = Recorder::ring(1 << 16);
        let (policy, report) = train_recorded(&cfg, &rec);
        assert!(
            rec.counter("faults.train_diverged") >= 1,
            "divergence was never detected"
        );
        assert!(policy.actor_weights.iter().all(|w| w.is_finite()));
        assert!(report.episode_rewards.iter().all(|r| r.is_finite()));
        assert!(report
            .episode_power_w
            .iter()
            .all(|p| p.is_finite() && *p > 0.0));
        let events = rec.drain_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::FaultInjected(f) if f.kind == "train-diverged")),
            "no train-diverged fault event emitted"
        );
    }

    #[test]
    fn truncated_checkpoint_is_rejected() {
        let cfg = tiny_train_cfg();
        let agent = Ddpg::new(cfg.deeppower.ddpg);
        let policy = TrainedPolicy {
            app: cfg.app,
            actor_weights: agent.actor_snapshot(),
            critic_weights: agent.critic_snapshot(),
            ddpg: cfg.deeppower.ddpg,
            deeppower: cfg.deeppower,
        };
        let dir = std::env::temp_dir().join(format!("deeppower-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("policy.json");
        policy.save(&path).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        // Simulate the torn write atomic_write prevents: half a file.
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = TrainedPolicy::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // A fresh save over the torn file recovers it.
        policy.save(&path).unwrap();
        let loaded = TrainedPolicy::load(&path).unwrap();
        assert_eq!(loaded.actor_weights, policy.actor_weights);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_config_defaults_track_app() {
        let cfg = TrainConfig::for_app(App::Masstree);
        assert_eq!(cfg.deeppower.state_norm.core_cap, 8.0);
        assert_eq!(cfg.deeppower.ddpg.state_dim, STATE_DIM);
        cfg.deeppower.validate().unwrap();
    }
}
