//! The reward calculator — §4.4.2.
//!
//! `R_total = −(α·R_energy + β·R_timeout + γ·R_queue)` where
//!
//! * `R_energy` — power consumed in the previous DRL step,
//! * `R_timeout` — requests that timed out in the step,
//! * `R_queue` — `scaleFunc(ql_t) · max(ql_t − ql_{t−1}, 0)`: queue growth
//!   is only punished once the queue is already long (Fig. 5's η gate).
//!
//! This implementation normalizes each term to a roughly unit scale before
//! weighting (energy against the idle↔max power band, timeouts against
//! the step's arrivals, queue growth against η) — the paper folds those
//! magnitudes into α/β/γ; factoring them out makes the default weights
//! portable across the five applications.

use serde::{Deserialize, Serialize};

/// `scaleFunc(x) = (x/η) / (x/η + η/(x+ε))` — §4.4.2, Fig. 5.
///
/// ≈0 for `x ≪ η`, crosses ½ at `x = η` (with ε → 0), → 1 as `x → ∞`.
pub fn scale_func(x: f64, eta: f64) -> f64 {
    const EPS: f64 = 1e-9;
    debug_assert!(eta > 0.0);
    let a = x / eta;
    let b = eta / (x + EPS);
    a / (a + b)
}

/// The reward components of one step, pre-weighting (all ≥ 0; useful for
/// diagnostics and the reward-weight ablation). `wasted` is the overload
/// extension's term — service effort spent on requests whose client had
/// already abandoned — and stays 0 unless an overload plan is active.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RewardTerms {
    pub energy: f64,
    pub timeout: f64,
    pub queue: f64,
    pub wasted: f64,
}

impl RewardTerms {
    /// Combine with weights into the (negative) total reward, normalized by
    /// the weight sum so the reward scale stays ~[-2, 0] regardless of how
    /// aggressively β is tuned — unbounded negative rewards destabilize the
    /// DDPG critic (its targets compound by 1/(1−γ)). With `kappa = 0` the
    /// weight sum and the total are bit-identical to the paper's
    /// three-term reward.
    pub fn total(&self, alpha: f64, beta: f64, gamma_q: f64, kappa: f64) -> f64 {
        let wsum = (alpha + beta + gamma_q + kappa).max(1e-9);
        -(alpha * self.energy + beta * self.timeout + gamma_q * self.queue + kappa * self.wasted)
            / wsum
    }
}

/// Stateful reward calculator: tracks the previous energy counter, timeout
/// counter, arrival counter and queue length across DRL steps.
#[derive(Clone, Copy, Debug)]
pub struct RewardCalculator {
    pub alpha: f64,
    pub beta: f64,
    pub gamma_q: f64,
    /// Weight on the wasted-work term (overload extension; 0 = the paper's
    /// three-term reward, bit-identically).
    pub kappa: f64,
    pub eta: f64,
    /// Normalization band for the energy term: socket power at idle/min
    /// frequency and at all-cores-max (watts).
    pub idle_power_w: f64,
    pub max_power_w: f64,
    prev_energy_uj: u64,
    prev_timeouts: u64,
    prev_arrived: u64,
    prev_wasted: u64,
    prev_queue_len: usize,
}

impl RewardCalculator {
    pub fn new(alpha: f64, beta: f64, gamma_q: f64, eta: f64) -> Self {
        Self {
            alpha,
            beta,
            gamma_q,
            kappa: 0.0,
            eta,
            idle_power_w: 40.0,
            max_power_w: 130.0,
            prev_energy_uj: 0,
            prev_timeouts: 0,
            prev_arrived: 0,
            prev_wasted: 0,
            prev_queue_len: 0,
        }
    }

    /// Reset counters at an episode boundary.
    pub fn reset(&mut self) {
        self.prev_energy_uj = 0;
        self.prev_timeouts = 0;
        self.prev_arrived = 0;
        self.prev_wasted = 0;
        self.prev_queue_len = 0;
    }

    /// Latch the internal counters to the given cumulative values without
    /// computing a reward.
    ///
    /// `reset()` zeroes the latches, which is only correct when the
    /// underlying counters also start from zero. When (re)starting the
    /// calculator mid-run — the monotone RAPL/request counters keep
    /// counting across episodes — latch to the *current* counters so the
    /// next `step` measures a real delta instead of the entire history.
    pub fn latch(
        &mut self,
        energy_uj: u64,
        timeouts: u64,
        arrived: u64,
        wasted: u64,
        queue_len: usize,
    ) {
        self.prev_energy_uj = energy_uj;
        self.prev_timeouts = timeouts;
        self.prev_arrived = arrived;
        self.prev_wasted = wasted;
        self.prev_queue_len = queue_len;
    }

    /// Compute the step reward from the current cumulative counters.
    ///
    /// * `energy_uj` — RAPL counter (monotone),
    /// * `timeouts` / `arrived` — cumulative request counters,
    /// * `wasted` — cumulative wasted completions (served after the client
    ///   abandoned; 0 unless an overload plan is active),
    /// * `queue_len` — current queue length,
    /// * `step_ns` — length of the DRL step (to convert energy to power).
    pub fn step(
        &mut self,
        energy_uj: u64,
        timeouts: u64,
        arrived: u64,
        wasted: u64,
        queue_len: usize,
        step_ns: u64,
    ) -> (f64, RewardTerms) {
        let d_energy_j = (energy_uj.saturating_sub(self.prev_energy_uj)) as f64 * 1e-6;
        let d_timeouts = timeouts.saturating_sub(self.prev_timeouts) as f64;
        let d_arrived = arrived.saturating_sub(self.prev_arrived) as f64;
        let d_wasted = wasted.saturating_sub(self.prev_wasted) as f64;
        let queue_growth = queue_len.saturating_sub(self.prev_queue_len) as f64;

        self.prev_energy_uj = energy_uj;
        self.prev_timeouts = timeouts;
        self.prev_arrived = arrived;
        self.prev_wasted = wasted;
        self.prev_queue_len = queue_len;

        let power_w = d_energy_j / (step_ns as f64 * 1e-9).max(1e-12);
        let energy_term = ((power_w - self.idle_power_w) / (self.max_power_w - self.idle_power_w))
            .clamp(0.0, 2.0);
        let timeout_term = if d_arrived > 0.0 {
            (d_timeouts / d_arrived).min(1.0)
        } else {
            0.0
        };
        let queue_term = scale_func(queue_len as f64, self.eta) * queue_growth / self.eta;
        // Like the timeout term: fraction of the step's offered load whose
        // service turned out to be wasted work.
        let wasted_term = if d_arrived > 0.0 {
            (d_wasted / d_arrived).min(1.0)
        } else {
            0.0
        };

        let terms = RewardTerms {
            energy: energy_term,
            timeout: timeout_term,
            queue: queue_term,
            wasted: wasted_term,
        };
        (
            terms.total(self.alpha, self.beta, self.gamma_q, self.kappa),
            terms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_func_shape_matches_fig5() {
        let eta = 100.0;
        // Near zero for small x.
        assert!(scale_func(1.0, eta) < 0.01);
        assert!(scale_func(30.0, eta) < 0.1);
        // Crosses 1/2 at x = η.
        assert!((scale_func(100.0, eta) - 0.5).abs() < 1e-6);
        // Approaches 1 for large x.
        assert!(scale_func(10_000.0, eta) > 0.99);
        // Monotone.
        let mut prev = 0.0;
        for i in 1..200 {
            let v = scale_func(i as f64 * 10.0, eta);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn zero_at_origin_and_bounded() {
        assert!(scale_func(0.0, 100.0) < 1e-12);
        for x in [0.0, 1.0, 100.0, 1e9] {
            let v = scale_func(x, 100.0);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn reward_penalizes_higher_power() {
        let mut rc_low = RewardCalculator::new(1.0, 0.0, 0.0, 100.0);
        let mut rc_high = RewardCalculator::new(1.0, 0.0, 0.0, 100.0);
        // 1 s steps: 50 J (50 W) vs 120 J (120 W).
        let (r_low, _) = rc_low.step(50_000_000, 0, 100, 0, 0, 1_000_000_000);
        let (r_high, _) = rc_high.step(120_000_000, 0, 100, 0, 0, 1_000_000_000);
        assert!(r_high < r_low, "more power must mean lower reward");
    }

    #[test]
    fn reward_penalizes_timeouts() {
        let mut rc = RewardCalculator::new(0.0, 1.0, 0.0, 100.0);
        let (r_none, t) = rc.step(0, 0, 100, 0, 0, 1_000_000_000);
        assert_eq!(t.timeout, 0.0);
        let (r_some, t) = rc.step(0, 20, 200, 0, 0, 1_000_000_000);
        assert!((t.timeout - 0.2).abs() < 1e-9);
        assert!(r_some < r_none);
    }

    #[test]
    fn queue_growth_below_eta_barely_punished() {
        let mut rc = RewardCalculator::new(0.0, 0.0, 1.0, 100.0);
        // Queue grows 0 → 20 (well below η): tiny penalty.
        let (_, t) = rc.step(0, 0, 0, 0, 20, 1_000_000_000);
        assert!(
            t.queue < 0.01,
            "small queue growth over-punished: {}",
            t.queue
        );
        // Queue grows 20 → 400 (above η): large penalty.
        let (_, t) = rc.step(0, 0, 0, 0, 400, 1_000_000_000);
        assert!(
            t.queue > 1.0,
            "large queue growth under-punished: {}",
            t.queue
        );
    }

    #[test]
    fn queue_shrinkage_not_rewarded() {
        let mut rc = RewardCalculator::new(0.0, 0.0, 1.0, 100.0);
        let _ = rc.step(0, 0, 0, 0, 500, 1_000_000_000);
        let (_, t) = rc.step(0, 0, 0, 0, 100, 1_000_000_000);
        assert_eq!(t.queue, 0.0, "max(Δql, 0) clips shrinkage");
    }

    #[test]
    fn wasted_term_is_fraction_of_offered_load() {
        let mut rc = RewardCalculator::new(0.0, 0.0, 0.0, 100.0);
        rc.kappa = 1.0;
        let (r0, t0) = rc.step(0, 0, 100, 0, 0, 1_000_000_000);
        assert_eq!(t0.wasted, 0.0);
        assert_eq!(r0, 0.0);
        // 100 new offers, 25 of them served-after-abandon → 0.25.
        let (r1, t1) = rc.step(0, 0, 200, 25, 0, 1_000_000_000);
        assert!((t1.wasted - 0.25).abs() < 1e-12);
        assert!(r1 < r0, "wasted work must lower the reward when κ > 0");
    }

    #[test]
    fn counters_are_deltas_not_cumulative() {
        let mut rc = RewardCalculator::new(1.0, 1.0, 0.0, 100.0);
        let (_, t1) = rc.step(60_000_000, 5, 100, 0, 0, 1_000_000_000);
        // Same cumulative counters again → zero deltas.
        let (_, t2) = rc.step(60_000_000, 5, 100, 0, 0, 1_000_000_000);
        assert!(t1.energy > 0.0 || t1.timeout > 0.0);
        assert_eq!(t2.timeout, 0.0);
        assert!(t2.energy <= 0.0 + 1e-12); // clamped at 0 (power below idle band)
    }

    #[test]
    fn latch_rebases_on_live_counters_where_reset_does_not() {
        // An episode boundary in the middle of a run: the monotone
        // counters are already large. `reset()` would zero the latches
        // and the next step would bill the governor for the whole
        // history; `latch(...)` rebases so only post-boundary deltas
        // count.
        let mut rc = RewardCalculator::new(1.0, 1.0, 0.0, 100.0);
        let _ = rc.step(500_000_000, 40, 1_000, 0, 0, 1_000_000_000);

        let mut via_reset = rc;
        via_reset.reset();
        let (_, t_reset) = via_reset.step(501_000_000, 40, 1_010, 0, 0, 1_000_000_000);
        // 501 J "consumed in one second" — a spurious, clamped-out blowup.
        assert!(
            t_reset.energy >= 2.0 - 1e-12,
            "reset should show the bug: {t_reset:?}"
        );
        assert!(
            t_reset.timeout > 0.0,
            "reset re-bills old timeouts: {t_reset:?}"
        );

        let mut via_latch = rc;
        via_latch.latch(500_000_000, 40, 1_000, 0, 0);
        let (_, t_latch) = via_latch.step(501_000_000, 40, 1_010, 0, 0, 1_000_000_000);
        // Real delta: 1 J over 1 s = 1 W, far below the idle band → 0.
        assert_eq!(
            t_latch.energy, 0.0,
            "latch must see only the real delta: {t_latch:?}"
        );
        assert_eq!(
            t_latch.timeout, 0.0,
            "no new timeouts after the latch: {t_latch:?}"
        );
    }

    #[test]
    fn weights_trade_off_terms_and_normalize() {
        let terms = RewardTerms {
            energy: 1.0,
            timeout: 0.5,
            queue: 0.2,
            wasted: 0.4,
        };
        // Single-term weights: total = -term value.
        assert!((terms.total(1.0, 0.0, 0.0, 0.0) + 1.0).abs() < 1e-12);
        assert!((terms.total(0.0, 2.0, 0.0, 0.0) + 0.5).abs() < 1e-12);
        assert!((terms.total(0.0, 0.0, 0.0, 3.0) + 0.4).abs() < 1e-12);
        // Mixed weights normalize by the weight sum.
        let expected = -(1.0 + 2.0 * 0.5 + 5.0 * 0.2) / 8.0;
        assert!((terms.total(1.0, 2.0, 5.0, 0.0) - expected).abs() < 1e-12);
        // Scaling all weights together leaves the reward unchanged.
        assert!((terms.total(2.0, 4.0, 10.0, 0.0) - expected).abs() < 1e-12);
        // κ joins the normalization: the four-term total.
        let expected4 = -(1.0 + 2.0 * 0.5 + 5.0 * 0.2 + 2.0 * 0.4) / 10.0;
        assert!((terms.total(1.0, 2.0, 5.0, 2.0) - expected4).abs() < 1e-12);
    }
}
