//! Sleep-state extension — the paper's future work (§6), implemented.
//!
//! "Moreover, there exist power management methodologies that utilize the
//! sleep states. … The integration of sleep states into our methods
//! represents a significant challenge. We leave this to future work."
//!
//! [`SleepAware`] wraps any [`Governor`] (DeepPower's hierarchical
//! governor included) with a DynSleep-style idle policy: a core that has
//! been idle longer than `idle_to_c1` enters C1, and longer than
//! `idle_to_deep` enters the deepest available state (C6). The wrapped
//! governor keeps full control of frequencies; waking is handled by the
//! engine, which charges the C-state's wake latency to the next request
//! dispatched onto a sleeping core.
//!
//! The trade-off this exposes is exactly the one §6 describes: deep sleep
//! slashes idle power but risks timeouts for latency budgets comparable
//! to the ~100 µs C6 wake latency (Masstree's 1 ms SLA feels it; Xapian's
//! 8 ms does not). The `ablation_sleep` bench quantifies both sides.

use deeppower_simd_server::{FreqCommands, Governor, Nanos, ServerView};

/// Idle-time thresholds for entering sleep states.
#[derive(Clone, Copy, Debug)]
pub struct SleepPolicy {
    /// Idle time after which a core enters the shallowest state.
    pub idle_to_c1: Nanos,
    /// Idle time after which a core enters the deepest state.
    pub idle_to_deep: Nanos,
}

impl Default for SleepPolicy {
    fn default() -> Self {
        // Idle gaps on a loaded LC server are sub-millisecond; enter C1
        // almost immediately and C6 after a few hundred microseconds.
        Self {
            idle_to_c1: 20_000,
            idle_to_deep: 300_000,
        }
    }
}

/// Governor combinator adding idle sleep management to `inner`.
pub struct SleepAware<G> {
    pub inner: G,
    policy: SleepPolicy,
    /// Per-core time at which the current idle period began
    /// (`None` while busy).
    idle_since: Vec<Option<Nanos>>,
}

impl<G: Governor> SleepAware<G> {
    pub fn new(inner: G, n_cores: usize, policy: SleepPolicy) -> Self {
        assert!(
            policy.idle_to_c1 <= policy.idle_to_deep,
            "shallow threshold must not exceed the deep one"
        );
        Self {
            inner,
            policy,
            idle_since: vec![None; n_cores],
        }
    }
}

impl<G: Governor> Governor for SleepAware<G> {
    fn on_tick(&mut self, view: &ServerView<'_>, cmds: &mut FreqCommands) {
        self.inner.on_tick(view, cmds);
        for (i, core) in view.cores.iter().enumerate() {
            if core.busy() {
                self.idle_since[i] = None;
                continue;
            }
            let since = *self.idle_since[i].get_or_insert(view.now);
            let idle_for = view.now.saturating_sub(since);
            if idle_for >= self.policy.idle_to_deep {
                // Deepest state is index 1 in the Xeon plan (C6); the
                // engine ignores out-of-range levels, so this is safe for
                // any plan with ≥1 state.
                cmds.set_sleep(i, 1);
            } else if idle_for >= self.policy.idle_to_c1 {
                cmds.set_sleep(i, 0);
            }
        }
    }

    fn on_request_start(
        &mut self,
        view: &ServerView<'_>,
        core_id: usize,
        req: &deeppower_simd_server::Request,
        cmds: &mut FreqCommands,
    ) {
        self.idle_since[core_id] = None;
        self.inner.on_request_start(view, core_id, req, cmds);
    }

    fn on_request_complete(
        &mut self,
        now: Nanos,
        core_id: usize,
        req: &deeppower_simd_server::Request,
        latency: Nanos,
    ) {
        self.idle_since[core_id] = Some(now);
        self.inner.on_request_complete(now, core_id, req, latency);
    }

    fn on_run_end(&mut self, view: &ServerView<'_>) {
        self.inner.on_run_end(view);
    }

    fn name(&self) -> &str {
        "sleep-aware"
    }

    fn healthy(&self) -> bool {
        self.inner.healthy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread_controller::{ControllerParams, ThreadController};
    use deeppower_simd_server::{
        FixedFrequency, Request, RunOptions, Server, ServerConfig, MILLISECOND, SECOND,
    };
    use deeppower_workload::{constant_rate_arrivals, App, AppSpec};

    fn sparse_workload() -> Vec<Request> {
        // One short request every 100 ms on a single core: 99 % idle.
        (0..10u64)
            .map(|i| Request {
                id: i,
                client_id: i,
                attempt: 0,
                arrival: i * 100 * MILLISECOND,
                first_arrival: i * 100 * MILLISECOND,
                work_ref_ns: MILLISECOND,
                freq_sensitivity: 1.0,
                sla: 50 * MILLISECOND,
                features: vec![],
            })
            .collect()
    }

    #[test]
    fn sleeping_idle_cores_cut_power() {
        // A mostly-idle 20-core socket clocked at max: C6 should recover
        // most of the clocked-idle power (~0.9 W/core at 2.1 GHz).
        let server = Server::new(ServerConfig::paper_with_cstates(20));
        let arrivals = sparse_workload();
        let mut plain = FixedFrequency { mhz: 2100 };
        let base = server.run(&arrivals, &mut plain, RunOptions::default());
        let mut sleepy = SleepAware::new(FixedFrequency { mhz: 2100 }, 20, SleepPolicy::default());
        let res = server.run(&arrivals, &mut sleepy, RunOptions::default());
        assert!(
            res.avg_power_w < base.avg_power_w - 5.0,
            "sleep saved too little: {:.2} vs {:.2} W",
            res.avg_power_w,
            base.avg_power_w
        );
        assert_eq!(res.stats.count, base.stats.count);
    }

    #[test]
    fn wake_latency_is_charged_to_the_next_request() {
        let server = Server::new(ServerConfig::paper_with_cstates(1));
        let arrivals = sparse_workload();
        let mut plain = FixedFrequency { mhz: 2100 };
        let awake = server.run(&arrivals, &mut plain, RunOptions::default());
        let mut sleepy = SleepAware::new(FixedFrequency { mhz: 2100 }, 1, SleepPolicy::default());
        let slept = server.run(&arrivals, &mut sleepy, RunOptions::default());
        // Requests after the first land on a C6-sleeping core: +100 us.
        let lat = |r: &deeppower_simd_server::SimResult, id: u64| {
            r.records.iter().find(|x| x.id == id).unwrap().latency
        };
        for id in 1..10u64 {
            let delta = lat(&slept, id) as i64 - lat(&awake, id) as i64;
            assert!(
                (90_000..=110_000).contains(&delta),
                "req {id}: expected ~100us wake penalty, got {delta} ns"
            );
        }
        // First request arrives at t=0 before any idle period: no penalty.
        assert!(lat(&slept, 0) == lat(&awake, 0));
    }

    #[test]
    fn sleep_ignored_without_cstate_plan() {
        // Same policy against a server with no C-states: commands are
        // no-ops, results identical to the plain governor.
        let server = Server::new(ServerConfig::paper_default(1));
        let arrivals = sparse_workload();
        let mut plain = FixedFrequency { mhz: 1500 };
        let base = server.run(&arrivals, &mut plain, RunOptions::default());
        let mut sleepy = SleepAware::new(FixedFrequency { mhz: 1500 }, 1, SleepPolicy::default());
        let res = server.run(&arrivals, &mut sleepy, RunOptions::default());
        assert_eq!(res.energy_j, base.energy_j);
        assert_eq!(res.stats.count, base.stats.count);
    }

    #[test]
    fn sleep_aware_thread_controller_holds_sla_on_xapian() {
        // DeepPower's bottom layer + sleep states on a light load: power
        // drops below the plain controller with no SLA damage (8 ms SLA
        // dwarfs the 100 us wake).
        let spec = AppSpec::get(App::Xapian);
        let server = Server::new(ServerConfig::paper_with_cstates(spec.n_threads));
        let arrivals = constant_rate_arrivals(&spec, spec.rps_for_load(0.15), 5 * SECOND, 9);
        let params = ControllerParams::new(0.2, 1.0);
        let mut plain = ThreadController::new(params);
        let base = server.run(&arrivals, &mut plain, RunOptions::default());
        let mut sleepy = SleepAware::new(
            ThreadController::new(params),
            spec.n_threads,
            SleepPolicy::default(),
        );
        let res = server.run(&arrivals, &mut sleepy, RunOptions::default());
        assert!(
            res.avg_power_w < base.avg_power_w * 0.95,
            "sleep states saved too little at low load: {:.1} vs {:.1} W",
            res.avg_power_w,
            base.avg_power_w
        );
        assert!(
            res.stats.p99_ns <= spec.sla,
            "sleep wake latency broke the SLA"
        );
    }

    #[test]
    fn per_tick_idle_commands_neither_wake_nor_rearm_sleeping_cores() {
        // `ThreadController::scale_all` re-commands every idle core's
        // BaseFreq level on every ShortTime tick. Under a SleepAware
        // wrapper those per-tick commands land on C1/C6-sleeping cores;
        // they must neither exit the sleep state nor reset the idle
        // timer — only a request dispatch wakes a core.
        let server = Server::new(ServerConfig::paper_with_cstates(1));
        let arrivals = sparse_workload();
        let opts = deeppower_simd_server::RunOptions {
            trace: deeppower_simd_server::TraceConfig::millisecond(),
            ..Default::default()
        };
        // base 0.3 interpolates well below the 2100 MHz start, so a real
        // frequency command is pending on the core when it goes to sleep.
        let params = ControllerParams::new(0.3, 1.0);
        let mut awake = ThreadController::new(params);
        let base = server.run(&arrivals, &mut awake, opts);
        let mut sleepy = SleepAware::new(ThreadController::new(params), 1, SleepPolicy::default());
        let slept = server.run(&arrivals, &mut sleepy, opts);

        // (1) Every post-gap request pays the full C6 wake latency: the
        // core was still in deep sleep at dispatch, so the per-tick
        // commands never woke it early.
        let lat = |r: &deeppower_simd_server::SimResult, id: u64| {
            r.records.iter().find(|x| x.id == id).unwrap().latency
        };
        for id in 1..10u64 {
            let delta = lat(&slept, id) as i64 - lat(&base, id) as i64;
            assert!(
                (90_000..=110_000).contains(&delta),
                "req {id}: commands disturbed the sleep state, wake delta {delta} ns"
            );
        }

        // (2) Sleep-entry timing is unchanged by the command stream: the
        // controller run reaches the C6 power floor just like a governor
        // that stops commanding idle cores entirely.
        let mut quiet = SleepAware::new(FixedFrequency { mhz: 1200 }, 1, SleepPolicy::default());
        let quiet_res = server.run(&arrivals, &mut quiet, opts);
        let idle_floor = |r: &deeppower_simd_server::SimResult| {
            r.traces
                .power
                .iter()
                .filter(|&&(_, _, _, busy)| busy == 0)
                .map(|&(_, p, _, _)| p)
                .fold(f64::INFINITY, f64::min)
        };
        let tc_floor = idle_floor(&slept);
        let quiet_floor = idle_floor(&quiet_res);
        assert!(
            (tc_floor - quiet_floor).abs() < 1e-9,
            "idle power floor differs: {tc_floor} vs {quiet_floor} W"
        );
        // And the floor is held for the bulk of each ~99 ms gap — a reset
        // idle timer would push C6 entry out by another idle_to_deep and
        // shrink this count. 10 gaps × ≥ 90 deep samples each.
        let deep_samples = |r: &deeppower_simd_server::SimResult, floor: f64| {
            r.traces
                .power
                .iter()
                .filter(|&&(_, p, _, busy)| busy == 0 && (p - floor).abs() < 1e-9)
                .count()
        };
        let tc_deep = deep_samples(&slept, tc_floor);
        let quiet_deep = deep_samples(&quiet_res, quiet_floor);
        assert!(
            tc_deep >= 850 && quiet_deep >= 850,
            "deep-sleep residency lost: controller {tc_deep} vs quiet {quiet_deep} samples"
        );
        assert!(
            (tc_deep as i64 - quiet_deep as i64).abs() <= 20,
            "idle timer rearmed by per-tick commands: {tc_deep} vs {quiet_deep} deep samples"
        );
    }

    #[test]
    #[should_panic(expected = "shallow threshold")]
    fn policy_threshold_order_enforced() {
        let _ = SleepAware::new(
            FixedFrequency { mhz: 800 },
            1,
            SleepPolicy {
                idle_to_c1: 10,
                idle_to_deep: 5,
            },
        );
    }
}
