//! The thread controller — Algorithm 1 of the paper.
//!
//! Every `ShortTime` the controller walks all cores. For core *i*
//! processing a request that began at `beginTimes[i]`:
//!
//! ```text
//! consumed = (curTime − beginTimes[i]) / SLA
//! score    = consumed · ScalingCoef + BaseFreq
//! if score ≥ 1 → turbo
//! else        → freq = f_min + (f_max − f_min) · score
//! ```
//!
//! so short requests finish at low frequency while long-running ones are
//! *gradually* accelerated toward turbo — the per-millisecond ramps
//! visible in Fig. 4. Idle cores sit at the `BaseFreq`-interpolated
//! frequency (Fig. 4: "If there is no request processing, the frequency is
//! set to BaseFreq").
//!
//! "Begin time" is the request's *arrival* (the score must reflect how
//! close the request is to its latency SLA, which is measured from
//! arrival — a request that queued for long must be boosted immediately).

use deeppower_simd_server::{FreqCommands, Governor, ServerView};
use serde::{Deserialize, Serialize};

/// The parameters the DRL agent controls (§4.4.3), all in `[0, 1]`
/// (`scaling_coef` may exceed 1; the score cap handles it).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControllerParams {
    pub base_freq: f32,
    pub scaling_coef: f32,
    /// Admission threshold for the overload co-management extension, as
    /// a fraction of the server's admission scale. `1.0` — the value
    /// two-action (paper-faithful) policies always carry — admits up to
    /// the full scale, i.e. the legacy behaviour.
    pub admit_frac: f32,
}

impl ControllerParams {
    pub fn new(base_freq: f32, scaling_coef: f32) -> Self {
        // `clamp`/`max` pass NaN through, and a NaN `base_freq` would
        // interpolate to the *minimum* frequency level — the worst
        // possible response to a broken actor. Sanitize to 0.0 so a
        // non-finite action degrades to a well-defined (if conservative)
        // controller; the safety layer handles the recovery.
        let base_freq = if base_freq.is_finite() {
            base_freq
        } else {
            0.0
        };
        let scaling_coef = if scaling_coef.is_finite() {
            scaling_coef
        } else {
            0.0
        };
        Self {
            base_freq: base_freq.clamp(0.0, 1.0),
            scaling_coef: scaling_coef.max(0.0),
            admit_frac: 1.0,
        }
    }

    /// From a raw DRL action vector: `[base_freq, scaling_coef]` for the
    /// paper's two-action policy, or `[base_freq, scaling_coef,
    /// admit_frac]` for the admission-co-managed extension.
    pub fn from_action(action: &[f32]) -> Self {
        assert!(
            action.len() == 2 || action.len() == 3,
            "controller action must be 2- or 3-dimensional, got {}",
            action.len()
        );
        let mut p = Self::new(action[0], action[1]);
        if action.len() == 3 {
            // Same sanitization as the frequency knobs: a non-finite
            // admission head degrades to admit-all, never to reject-all.
            p.admit_frac = if action[2].is_finite() {
                action[2].clamp(0.0, 1.0)
            } else {
                1.0
            };
        }
        p
    }
}

impl Default for ControllerParams {
    fn default() -> Self {
        // A safe mid-range starting point before the agent takes over.
        Self {
            base_freq: 0.5,
            scaling_coef: 0.5,
            admit_frac: 1.0,
        }
    }
}

/// Algorithm 1 as a standalone [`Governor`]. With fixed parameters this is
/// exactly the Fig. 11 experiment; inside [`crate::DeepPowerGovernor`] the
/// parameters are re-written by the DRL agent every `LongTime`.
#[derive(Clone, Copy, Debug)]
pub struct ThreadController {
    pub params: ControllerParams,
}

impl ThreadController {
    pub fn new(params: ControllerParams) -> Self {
        Self { params }
    }

    /// The score of Algorithm 1 line 5 for a request that has consumed
    /// `consumed_frac` of its SLA.
    pub fn score(&self, consumed_frac: f32) -> f32 {
        consumed_frac * self.params.scaling_coef + self.params.base_freq
    }

    /// Apply Algorithm 1's body to every core given the current view,
    /// and publish the admission threshold (consumed only by servers
    /// running a DRL-admission overload plan; a no-op everywhere else).
    pub fn scale_all(&self, view: &ServerView<'_>, cmds: &mut FreqCommands) {
        cmds.set_admission(self.params.admit_frac);
        for (core_id, core) in view.cores.iter().enumerate() {
            match &core.running {
                Some(run) => {
                    let consumed = (view.now.saturating_sub(run.arrival)) as f32 / run.sla as f32;
                    let score = self.score(consumed);
                    if score >= 1.0 {
                        cmds.set_turbo(core_id); // Algorithm 1 line 7
                    } else {
                        let mhz = cmds.interpolate(score); // Algorithm 1 line 9
                        cmds.set(core_id, mhz);
                    }
                }
                None => {
                    // Idle: hold at the BaseFreq level.
                    let score = self.params.base_freq;
                    if score >= 1.0 {
                        cmds.set_turbo(core_id);
                    } else {
                        let mhz = cmds.interpolate(score);
                        cmds.set(core_id, mhz);
                    }
                }
            }
        }
    }
}

impl Governor for ThreadController {
    fn on_tick(&mut self, view: &ServerView<'_>, cmds: &mut FreqCommands) {
        self.scale_all(view, cmds);
    }

    fn name(&self) -> &str {
        "thread-controller"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deeppower_simd_server::{
        ContentionModel, FreqPlan, PowerModel, Request, RunOptions, Server, ServerConfig,
        TraceConfig, MILLISECOND,
    };

    fn server(n: usize) -> Server {
        Server::new(ServerConfig {
            n_cores: n,
            freq_plan: FreqPlan::xeon_gold_5218r(),
            power: PowerModel::default(),
            contention: ContentionModel::none(),
            initial_mhz: 2100,
            cstates: deeppower_simd_server::CStatePlan::none(),
            core_max_mhz: Vec::new(),
        })
    }

    fn req(id: u64, arrival: u64, work: u64, sla: u64) -> Request {
        Request {
            id,
            client_id: id,
            attempt: 0,
            arrival,
            first_arrival: arrival,
            work_ref_ns: work,
            freq_sensitivity: 1.0,
            sla,
            features: vec![],
        }
    }

    #[test]
    fn params_clamped_to_unit_range() {
        let p = ControllerParams::new(-0.5, 1.5);
        assert_eq!(p.base_freq, 0.0);
        assert_eq!(p.scaling_coef, 1.5); // coef may exceed 1 (score cap handles it)
        let p = ControllerParams::from_action(&[0.3, 0.9]);
        assert_eq!(p, ControllerParams::new(0.3, 0.9));
        assert_eq!(p.admit_frac, 1.0, "2-action policies admit everything");
        let p3 = ControllerParams::from_action(&[0.3, 0.9, 0.4]);
        assert_eq!(p3.admit_frac, 0.4);
        let p3 = ControllerParams::from_action(&[0.3, 0.9, f32::NAN]);
        assert_eq!(p3.admit_frac, 1.0, "broken admission head → admit-all");
        assert!(std::panic::catch_unwind(|| ControllerParams::from_action(&[0.1])).is_err());
    }

    #[test]
    fn score_formula_matches_algorithm1() {
        let tc = ThreadController::new(ControllerParams::new(0.4, 1.0));
        assert!((tc.score(0.0) - 0.4).abs() < 1e-6);
        assert!((tc.score(0.3) - 0.7).abs() < 1e-6);
        assert!(tc.score(0.6) >= 1.0); // turbo region
    }

    #[test]
    fn long_request_ramps_frequency_up_to_turbo() {
        // One request with SLA 10 ms and ~18 ms of min-frequency work:
        // the controller must ramp it through the levels into turbo.
        let s = server(1);
        let mut tc = ThreadController::new(ControllerParams::new(0.2, 1.2));
        let arrivals = vec![req(0, 0, 7 * MILLISECOND, 10 * MILLISECOND)];
        let res = s.run(
            &arrivals,
            &mut tc,
            RunOptions {
                tick_ns: MILLISECOND,
                trace: TraceConfig::millisecond(),
                ..Default::default()
            },
        );
        let freqs: Vec<u32> = res.traces.freq.iter().map(|&(_, _, f)| f).collect();
        // Frequency is non-decreasing while the request runs.
        let busy_freqs: Vec<u32> = freqs.clone();
        assert!(
            busy_freqs.windows(2).all(|w| w[1] >= w[0] || w[1] == 800),
            "freq not ramping: {busy_freqs:?}"
        );
        // Reaches turbo before completion (score crosses 1 at 6.67 ms).
        assert!(freqs.contains(&3000), "never hit turbo: {freqs:?}");
        assert_eq!(res.stats.count, 1);
    }

    #[test]
    fn short_request_finishes_at_low_frequency() {
        let s = server(1);
        let mut tc = ThreadController::new(ControllerParams::new(0.1, 0.5));
        // 0.35 ms of work at reference; at the initial interpolated level
        // (~930 MHz) it still finishes well within 10 % of SLA → never
        // leaves the bottom levels.
        let arrivals = vec![req(0, 0, 350_000, 10 * MILLISECOND)];
        let res = s.run(
            &arrivals,
            &mut tc,
            RunOptions {
                tick_ns: MILLISECOND,
                trace: TraceConfig::millisecond(),
                ..Default::default()
            },
        );
        let max_freq = res.traces.freq.iter().map(|&(_, _, f)| f).max().unwrap();
        assert!(
            max_freq <= 1000,
            "short request over-accelerated: {max_freq}"
        );
        assert_eq!(res.stats.timeouts, 0);
    }

    #[test]
    fn idle_cores_sit_at_base_freq_level() {
        let s = server(2);
        let mut tc = ThreadController::new(ControllerParams::new(0.5, 1.0));
        // Only one long request → core 1 stays idle.
        let arrivals = vec![req(0, 0, 3 * MILLISECOND, 100 * MILLISECOND)];
        let res = s.run(
            &arrivals,
            &mut tc,
            RunOptions {
                tick_ns: MILLISECOND,
                trace: TraceConfig::millisecond(),
                ..Default::default()
            },
        );
        let idle_freqs: Vec<u32> = res
            .traces
            .freq
            .iter()
            .filter(|&&(_, c, _)| c == 1)
            .map(|&(_, _, f)| f)
            .collect();
        // base 0.5 → 800 + 1300·0.5 = 1450 → snaps to 1400 or 1500.
        assert!(
            idle_freqs.iter().all(|&f| f == 1400 || f == 1500),
            "idle core not at base level: {idle_freqs:?}"
        );
    }

    #[test]
    fn interpolation_follows_the_servers_plan_not_the_xeon_band() {
        // Regression: interpolate_cmd used to hardcode the Xeon
        // 800–2100 MHz band, so a server on FreqPlan::test_plan()
        // (1000–2000 MHz) received out-of-band commands. The controller
        // must interpolate inside the *actual* plan.
        let plan = FreqPlan::test_plan();
        let s = Server::new(ServerConfig {
            n_cores: 2,
            freq_plan: plan.clone(),
            power: PowerModel::default(),
            contention: ContentionModel::none(),
            initial_mhz: 2000,
            cstates: deeppower_simd_server::CStatePlan::none(),
            core_max_mhz: Vec::new(),
        });
        // base 0.5 → 1000 + 1000·0.5 = 1500 exactly (a plan level).
        let mut tc = ThreadController::new(ControllerParams::new(0.5, 0.0));
        let arrivals = vec![req(0, 0, 3 * MILLISECOND, 100 * MILLISECOND)];
        let res = s.run(
            &arrivals,
            &mut tc,
            RunOptions {
                tick_ns: MILLISECOND,
                trace: TraceConfig::millisecond(),
                ..Default::default()
            },
        );
        let freqs: Vec<u32> = res.traces.freq.iter().map(|&(_, _, f)| f).collect();
        assert!(!freqs.is_empty());
        assert!(
            freqs.iter().all(|&f| f == 1500),
            "expected every core at the plan midpoint 1500, got {freqs:?}"
        );

        // And the command buffer interpolates the plan band directly.
        let cmds = FreqCommands::new(1, &plan);
        assert_eq!(cmds.freq_band_mhz(), (1000, 2000));
        assert_eq!(cmds.interpolate(0.0), 1000);
        assert_eq!(cmds.interpolate(1.0), 2000);
        assert_eq!(cmds.interpolate(0.5), 1500);
    }

    #[test]
    fn base_freq_one_means_permanent_turbo() {
        let s = server(1);
        let mut tc = ThreadController::new(ControllerParams::new(1.0, 0.0));
        let arrivals = vec![req(0, 0, MILLISECOND, 10 * MILLISECOND)];
        let res = s.run(
            &arrivals,
            &mut tc,
            RunOptions {
                tick_ns: MILLISECOND,
                trace: TraceConfig::millisecond(),
                ..Default::default()
            },
        );
        assert!(res.traces.freq.iter().all(|&(_, _, f)| f == 3000));
    }

    #[test]
    fn queued_wait_time_counts_toward_score() {
        // Two requests on one core; the second queues behind the first.
        // When it finally starts, its consumed fraction is already high →
        // immediate boost. We verify it runs faster than the first did.
        let s = server(1);
        let mut tc = ThreadController::new(ControllerParams::new(0.0, 1.1));
        let arrivals = vec![
            req(0, 0, 4 * MILLISECOND, 10 * MILLISECOND),
            req(1, 0, 4 * MILLISECOND, 10 * MILLISECOND),
        ];
        let res = s.run(
            &arrivals,
            &mut tc,
            RunOptions {
                tick_ns: MILLISECOND,
                trace: TraceConfig::millisecond(),
                ..Default::default()
            },
        );
        let r0 = res.records.iter().find(|r| r.id == 0).unwrap();
        let r1 = res.records.iter().find(|r| r.id == 1).unwrap();
        let service0 = r0.completed - r0.started;
        let service1 = r1.completed - r1.started;
        assert!(
            service1 < service0,
            "queued request was not boosted: {service1} vs {service0}"
        );
    }
}
