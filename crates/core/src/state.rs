//! The state observer — §4.4.1.
//!
//! DeepPower represents the workload condition with an 8-dimensional
//! vector `(NumReq, QueueLen, Queue25, Queue50, Queue75, Core25, Core50,
//! Core75)`:
//!
//! * `NumReq` — requests received in the last DRL period,
//! * `QueueLen` — requests waiting in the server queue,
//! * `QueueX` — queued requests whose remaining time budget is below
//!   `SLA·X %`,
//! * `CoreX` — in-service requests whose remaining budget is below
//!   `SLA·X %`.
//!
//! Components are normalized by the caps in [`StateNorm`] and clamped to
//! `[0, 2]` so transient overload doesn't blow up actor inputs.

use crate::config::StateNorm;
use deeppower_simd_server::{Nanos, ServerView};

/// Dimensionality of the DeepPower state vector.
pub const STATE_DIM: usize = 8;

/// Stateful observer: tracks the previous cumulative-arrival counter to
/// derive `NumReq` per period.
#[derive(Clone, Copy, Debug)]
pub struct StateObserver {
    norm: StateNorm,
    prev_arrived: u64,
}

impl StateObserver {
    pub fn new(norm: StateNorm) -> Self {
        Self {
            norm,
            prev_arrived: 0,
        }
    }

    /// Reset the arrival baseline (episode boundary).
    pub fn reset(&mut self) {
        self.prev_arrived = 0;
    }

    /// Produce the normalized state vector for the current view and
    /// advance the arrival baseline.
    pub fn observe(&mut self, view: &ServerView<'_>) -> [f32; STATE_DIM] {
        let num_req = view.total_arrived.saturating_sub(self.prev_arrived);
        self.prev_arrived = view.total_arrived;

        let mut queue_x = [0u32; 3]; // <25%, <50%, <75% budget remaining
        for req in view.queue.iter() {
            let remaining = remaining_budget(view.now, req.arrival, req.sla);
            bump_buckets(&mut queue_x, remaining, req.sla);
        }

        let mut core_x = [0u32; 3];
        for core in view.cores.iter() {
            if let Some(run) = &core.running {
                let remaining = remaining_budget(view.now, run.arrival, run.sla);
                bump_buckets(&mut core_x, remaining, run.sla);
            }
        }

        let clamp = |x: f32| x.clamp(0.0, 2.0);
        [
            clamp(num_req as f32 / self.norm.num_req_cap),
            clamp(view.queue.len() as f32 / self.norm.queue_cap),
            clamp(queue_x[0] as f32 / self.norm.queue_cap),
            clamp(queue_x[1] as f32 / self.norm.queue_cap),
            clamp(queue_x[2] as f32 / self.norm.queue_cap),
            clamp(core_x[0] as f32 / self.norm.core_cap),
            clamp(core_x[1] as f32 / self.norm.core_cap),
            clamp(core_x[2] as f32 / self.norm.core_cap),
        ]
    }
}

/// Remaining latency budget of a request: `SLA − elapsed` (saturating —
/// an already-late request has zero budget and lands in every bucket).
fn remaining_budget(now: Nanos, arrival: Nanos, sla: Nanos) -> Nanos {
    sla.saturating_sub(now.saturating_sub(arrival))
}

/// Increment the `<25%`, `<50%`, `<75%` budget buckets.
fn bump_buckets(buckets: &mut [u32; 3], remaining: Nanos, sla: Nanos) {
    // Integer-exact thresholds: remaining < sla * X/100.
    if (remaining as u128) * 100 < (sla as u128) * 25 {
        buckets[0] += 1;
    }
    if (remaining as u128) * 100 < (sla as u128) * 50 {
        buckets[1] += 1;
    }
    if (remaining as u128) * 100 < (sla as u128) * 75 {
        buckets[2] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deeppower_simd_server::{CoreView, Request, RunningView, MILLISECOND};
    use std::collections::VecDeque;

    fn queued(arrival: Nanos, sla: Nanos) -> Request {
        Request {
            id: 0,
            client_id: 0,
            attempt: 0,
            arrival,
            first_arrival: arrival,
            work_ref_ns: 1,
            freq_sensitivity: 1.0,
            sla,
            features: vec![],
        }
    }

    fn view<'a>(
        now: Nanos,
        queue: &'a VecDeque<Request>,
        cores: &'a [CoreView<'a>],
        arrived: u64,
    ) -> ServerView<'a> {
        ServerView {
            now,
            queue,
            cores,
            total_arrived: arrived,
            total_completed: 0,
            total_timeouts: 0,
            total_shed: 0,
            total_wasted: 0,
            energy_uj: 0,
        }
    }

    #[test]
    fn num_req_is_per_period_delta() {
        let norm = StateNorm {
            num_req_cap: 100.0,
            queue_cap: 10.0,
            core_cap: 4.0,
        };
        let mut obs = StateObserver::new(norm);
        let q = VecDeque::new();
        let cores: [CoreView<'_>; 0] = [];
        let s1 = obs.observe(&view(0, &q, &cores, 50));
        assert!((s1[0] - 0.5).abs() < 1e-6);
        let s2 = obs.observe(&view(0, &q, &cores, 80));
        assert!((s2[0] - 0.3).abs() < 1e-6, "delta arrivals: {}", s2[0]);
    }

    #[test]
    fn queue_buckets_follow_remaining_budget() {
        let norm = StateNorm {
            num_req_cap: 1.0,
            queue_cap: 10.0,
            core_cap: 4.0,
        };
        let mut obs = StateObserver::new(norm);
        let sla = 10 * MILLISECOND;
        let now = 8 * MILLISECOND;
        // Budgets: req A arrived at t=0 → 2 ms left (20% → in all buckets);
        // req B arrived at 4 ms → 6 ms left (60% → only <75% bucket);
        // req C arrived at 7.9 ms → 9.9 ms left (99% → no bucket).
        let q: VecDeque<Request> = [
            queued(0, sla),
            queued(4 * MILLISECOND, sla),
            queued(7_900_000, sla),
        ]
        .into_iter()
        .collect();
        let cores: [CoreView<'_>; 0] = [];
        let s = obs.observe(&view(now, &q, &cores, 0));
        assert!((s[1] - 0.3).abs() < 1e-6, "QueueLen {}", s[1]);
        assert!((s[2] - 0.1).abs() < 1e-6, "Queue25 {}", s[2]);
        assert!((s[3] - 0.1).abs() < 1e-6, "Queue50 {}", s[3]);
        assert!((s[4] - 0.2).abs() < 1e-6, "Queue75 {}", s[4]);
    }

    #[test]
    fn core_buckets_counted_separately() {
        let norm = StateNorm {
            num_req_cap: 1.0,
            queue_cap: 10.0,
            core_cap: 4.0,
        };
        let mut obs = StateObserver::new(norm);
        let sla = 10 * MILLISECOND;
        let now = 9 * MILLISECOND;
        // Running request arrived at t=0 → 1 ms budget (10 %): all buckets.
        let running = RunningView {
            arrival: 0,
            started: MILLISECOND,
            features: &[],
            sla,
        };
        let cores = [
            CoreView {
                freq_mhz: 2100,
                running: Some(running),
                sleeping: None,
            },
            CoreView {
                freq_mhz: 2100,
                running: None,
                sleeping: None,
            },
        ];
        let q = VecDeque::new();
        let s = obs.observe(&view(now, &q, &cores, 0));
        assert!((s[5] - 0.25).abs() < 1e-6);
        assert!((s[6] - 0.25).abs() < 1e-6);
        assert!((s[7] - 0.25).abs() < 1e-6);
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn overdue_requests_saturate_not_underflow() {
        let norm = StateNorm::default();
        let mut obs = StateObserver::new(norm);
        let sla = MILLISECOND;
        // Arrived 5 ms ago with 1 ms SLA: budget saturates to 0.
        let q: VecDeque<Request> = [queued(0, sla)].into_iter().collect();
        let cores: [CoreView<'_>; 0] = [];
        let s = obs.observe(&view(5 * MILLISECOND, &q, &cores, 0));
        assert!(s.iter().all(|&x| x.is_finite() && x >= 0.0));
        assert!(s[2] > 0.0, "overdue request must land in the <25% bucket");
    }

    #[test]
    fn state_components_clamped() {
        let norm = StateNorm {
            num_req_cap: 1.0,
            queue_cap: 1.0,
            core_cap: 1.0,
        };
        let mut obs = StateObserver::new(norm);
        let sla = MILLISECOND;
        let q: VecDeque<Request> = (0..50).map(|_| queued(0, sla)).collect();
        let cores: [CoreView<'_>; 0] = [];
        let s = obs.observe(&view(2 * MILLISECOND, &q, &cores, 1_000_000));
        assert!(s.iter().all(|&x| x <= 2.0));
    }

    #[test]
    fn reset_restores_arrival_baseline() {
        let mut obs = StateObserver::new(StateNorm::default());
        let q = VecDeque::new();
        let cores: [CoreView<'_>; 0] = [];
        let _ = obs.observe(&view(0, &q, &cores, 500));
        obs.reset();
        let s = obs.observe(&view(0, &q, &cores, 500));
        assert!(s[0] > 0.0, "after reset the full counter counts again");
    }
}
