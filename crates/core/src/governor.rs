//! The hierarchical control loop — the heart of DeepPower (§3.2, §4.1).
//!
//! "The top layer outputs an action in a longer interval, and trains the
//! neural network based on the state transition and reward function.
//! Meanwhile, the bottom layer selects a frequency for each CPU core in
//! shorter intervals, guided by the action of the top layer."
//!
//! [`DeepPowerGovernor`] plugs into the simulator's [`Governor`] hook at
//! `ShortTime` granularity. Every tick it runs Algorithm 1 (the thread
//! controller); every `LongTime` it additionally performs one DRL step:
//! observe the 8-dim state, compute the reward for the elapsed step, push
//! the transition into the replay pool, (in training mode) run a DDPG
//! update, and emit the next `(BaseFreq, ScalingCoef)` action.

use crate::config::DeepPowerConfig;
use crate::reward::{RewardCalculator, RewardTerms};
use crate::state::{StateObserver, STATE_DIM};
use crate::thread_controller::{ControllerParams, ThreadController};
use deeppower_drl::{Ddpg, Transition, UpdateStats};
use deeppower_simd_server::{FreqCommands, Governor, Nanos, ServerView};
use deeppower_telemetry::{event, Event, Recorder};
use serde::{Deserialize, Serialize};

/// Whether the agent explores and learns, or just executes its policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    Train,
    Eval,
}

/// One DRL-step log entry — the raw material for Fig. 8's time series.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StepLog {
    /// Step end time.
    pub t: Nanos,
    /// The normalized 8-dim observation at the step boundary — the
    /// input the row's action was computed from (on the terminal row
    /// flushed by `on_run_end` it is the final observation, while the
    /// action columns keep the previous step's action: no new action is
    /// taken at episode end). Introspection tools replay decisions
    /// through the actor/critic from this.
    pub state: [f32; STATE_DIM],
    /// Arrivals during the step (the RPS curve).
    pub num_req: u64,
    /// Average socket power over the step, watts.
    pub power_w: f64,
    /// Action taken *for the next step*.
    pub base_freq: f32,
    pub scaling_coef: f32,
    /// Commanded admission threshold (1.0 — admit everything — for
    /// two-action agents).
    pub admit_frac: f32,
    /// Mean commanded core frequency at the step boundary, MHz.
    pub avg_freq_mhz: f64,
    pub queue_len: usize,
    /// Timeouts during the step.
    pub timeouts: u64,
    /// Reward granted for the elapsed step.
    pub reward: f64,
    pub terms: RewardTerms,
}

/// Hierarchical DeepPower governor. Borrows the DDPG agent so training
/// state persists across episodes.
pub struct DeepPowerGovernor<'a> {
    agent: &'a mut Ddpg,
    cfg: DeepPowerConfig,
    controller: ThreadController,
    observer: StateObserver,
    reward: RewardCalculator,
    mode: Mode,
    ticks_per_long: u64,
    tick_count: u64,
    /// `(state, action)` awaiting its outcome (next state + reward).
    pending: Option<([f32; STATE_DIM], Vec<f32>)>,
    /// When the currently-open DRL window started (`None` before the
    /// first step). Rewards and power telemetry are computed over the
    /// *actually elapsed* interval, not the nominal `long_time` — the
    /// two differ at the first step and at episode end.
    last_step_t: Option<Nanos>,
    /// Per-step telemetry (Fig. 8).
    pub log: Vec<StepLog>,
    // Counters for the log's per-step deltas.
    prev_arrived: u64,
    prev_timeouts: u64,
    prev_energy_uj: u64,
    /// DDPG updates performed through this governor.
    pub updates_done: u64,
    /// `false` after the actor emitted a non-finite action; the
    /// [`crate::SafetyGovernor`] polls this through
    /// [`Governor::healthy`] and pins max frequency while it is down.
    /// Recovers as soon as the actor produces a finite action again.
    policy_healthy: bool,
    /// Telemetry handle (disabled by default; see
    /// [`with_recorder`](Self::with_recorder)).
    recorder: Recorder,
}

impl<'a> DeepPowerGovernor<'a> {
    pub fn new(agent: &'a mut Ddpg, cfg: DeepPowerConfig, mode: Mode) -> Self {
        cfg.validate().expect("invalid DeepPower config");
        assert_eq!(agent.cfg.state_dim, STATE_DIM, "agent state dim mismatch");
        assert!(
            agent.cfg.action_dim == 2 || agent.cfg.action_dim == 3,
            "agent action dim mismatch: need 2 (freq-only) or 3 (freq + admission), got {}",
            agent.cfg.action_dim
        );
        let mut reward = RewardCalculator::new(cfg.alpha, cfg.beta, cfg.gamma_q, cfg.eta);
        reward.kappa = cfg.kappa;
        // Tie the energy normalization band to nothing app-specific: the
        // defaults inside RewardCalculator cover the Xeon socket model.
        reward.reset();
        Self {
            controller: ThreadController::new(ControllerParams::default()),
            observer: StateObserver::new(cfg.state_norm),
            reward,
            mode,
            ticks_per_long: cfg.ticks_per_long(),
            tick_count: 0,
            pending: None,
            last_step_t: None,
            log: Vec::new(),
            prev_arrived: 0,
            prev_timeouts: 0,
            prev_energy_uj: 0,
            updates_done: 0,
            policy_healthy: true,
            recorder: Recorder::disabled(),
            agent,
            cfg,
        }
    }

    /// Attach a telemetry recorder: every DRL step then emits an
    /// [`event::DrlStep`] mirroring the [`StepLog`] entry, and (in
    /// training mode) an [`event::TrainUpdate`] with the DDPG internals
    /// of the step's last gradient update — one event per step, not per
    /// update, so event volume is bounded by the step count.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Current thread-controller parameters (the last action).
    pub fn params(&self) -> ControllerParams {
        self.controller.params
    }

    fn drl_step(&mut self, view: &ServerView<'_>) {
        let next_state = self.observer.observe(view);
        let closed = self.close_window(view, &next_state, false);

        let action = match self.mode {
            Mode::Train => self.agent.act_explore(&next_state),
            Mode::Eval => self.agent.act(&next_state),
        };
        self.policy_healthy = action.iter().all(|a| a.is_finite());
        if !self.policy_healthy {
            self.recorder.emit(|| {
                Event::FaultInjected(event::FaultInjected {
                    t: view.now,
                    kind: "action-nan".to_string(),
                    core: -1,
                    magnitude: 0.0,
                })
            });
            self.recorder.add("faults.action_nan", 1);
        }
        // `ControllerParams::new` maps non-finite components to 0.0, so
        // the controller keeps a well-defined (minimum-frequency) policy
        // even while unhealthy.
        self.controller.params = ControllerParams::from_action(&action);

        if let Some((r, terms, elapsed)) = closed {
            self.push_log(view, &next_state, r, terms, elapsed);
        }

        self.pending = Some((next_state, self.action_vec()));
        self.last_step_t = Some(view.now);
    }

    /// Close the currently open DRL window at `view.now`: compute the
    /// reward over the *elapsed* interval, emit the pending transition
    /// (terminal iff `done`), and run training updates. Returns `None` at
    /// the very first step, where no window has elapsed yet — there the
    /// monotone counters are merely latched so the next window measures a
    /// real delta instead of averaging over a `long_time` that never ran.
    fn close_window(
        &mut self,
        view: &ServerView<'_>,
        next_state: &[f32; STATE_DIM],
        done: bool,
    ) -> Option<(f64, RewardTerms, Nanos)> {
        let Some(t0) = self.last_step_t else {
            self.reward.latch(
                view.energy_uj,
                view.total_timeouts,
                view.total_arrived,
                view.total_wasted,
                view.queue.len(),
            );
            self.prev_arrived = view.total_arrived;
            self.prev_timeouts = view.total_timeouts;
            self.prev_energy_uj = view.energy_uj;
            return None;
        };
        let elapsed = view.now.saturating_sub(t0);
        let (r, terms) = self.reward.step(
            view.energy_uj,
            view.total_timeouts,
            view.total_arrived,
            view.total_wasted,
            view.queue.len(),
            elapsed.max(1),
        );

        if let Some((state, action)) = self.pending.take() {
            let accepted = self.agent.observe(Transition {
                state: state.to_vec(),
                action,
                reward: r as f32,
                next_state: next_state.to_vec(),
                done,
            });
            if !accepted {
                self.recorder.emit(|| {
                    Event::FaultInjected(event::FaultInjected {
                        t: view.now,
                        kind: "replay-reject".to_string(),
                        core: -1,
                        magnitude: 0.0,
                    })
                });
                self.recorder.add("faults.replay_reject", 1);
            }
            if self.mode == Mode::Train && self.agent.ready() {
                let mut last = UpdateStats::default();
                for _ in 0..self.cfg.updates_per_step.max(1) {
                    last = self.agent.update();
                    self.updates_done += 1;
                    if last.diverged {
                        self.recorder.emit(|| {
                            Event::FaultInjected(event::FaultInjected {
                                t: view.now,
                                kind: "train-diverged".to_string(),
                                core: -1,
                                magnitude: self.agent.rollbacks() as f64,
                            })
                        });
                        self.recorder.add("faults.train_diverged", 1);
                    }
                }
                self.recorder.emit(|| {
                    Event::TrainUpdate(event::TrainUpdate {
                        t: view.now,
                        updates: self.updates_done,
                        critic_loss: last.critic_loss as f64,
                        actor_q: last.actor_q as f64,
                        actor_grad_norm: last.actor_grad_norm as f64,
                        critic_grad_norm: last.critic_grad_norm as f64,
                        replay_len: self.agent.replay.len() as u64,
                        replay_capacity: self.agent.replay.capacity() as u64,
                    })
                });
            }
        }
        Some((r, terms, elapsed))
    }

    fn push_log(
        &mut self,
        view: &ServerView<'_>,
        state: &[f32; STATE_DIM],
        r: f64,
        terms: RewardTerms,
        elapsed: Nanos,
    ) {
        let num_req = view.total_arrived - self.prev_arrived;
        let timeouts = view.total_timeouts - self.prev_timeouts;
        let d_energy_j = (view.energy_uj - self.prev_energy_uj) as f64 * 1e-6;
        let power_w = d_energy_j / (elapsed as f64 * 1e-9).max(1e-12);
        self.prev_arrived = view.total_arrived;
        self.prev_timeouts = view.total_timeouts;
        self.prev_energy_uj = view.energy_uj;
        let avg_freq = if view.cores.is_empty() {
            0.0
        } else {
            view.cores.iter().map(|c| c.freq_mhz as f64).sum::<f64>() / view.cores.len() as f64
        };
        self.log.push(StepLog {
            t: view.now,
            state: *state,
            num_req,
            power_w,
            base_freq: self.controller.params.base_freq,
            scaling_coef: self.controller.params.scaling_coef,
            admit_frac: self.controller.params.admit_frac,
            avg_freq_mhz: avg_freq,
            queue_len: view.queue.len(),
            timeouts,
            reward: r,
            terms,
        });
        self.recorder.emit(|| {
            Event::DrlStep(event::DrlStep {
                t: view.now,
                num_req,
                power_w,
                base_freq: self.controller.params.base_freq as f64,
                scaling_coef: self.controller.params.scaling_coef as f64,
                admit_frac: self.controller.params.admit_frac as f64,
                avg_freq_mhz: avg_freq,
                queue_len: view.queue.len() as u64,
                timeouts,
                reward: r,
                r_energy: terms.energy,
                r_timeout: terms.timeout,
                r_queue: terms.queue,
                r_wasted: terms.wasted,
            })
        });
    }

    fn action_vec(&self) -> Vec<f32> {
        let mut a = vec![
            self.controller.params.base_freq,
            self.controller.params.scaling_coef,
        ];
        if self.agent.cfg.action_dim == 3 {
            a.push(self.controller.params.admit_frac);
        }
        a
    }
}

impl Governor for DeepPowerGovernor<'_> {
    fn on_tick(&mut self, view: &ServerView<'_>, cmds: &mut FreqCommands) {
        if self.tick_count.is_multiple_of(self.ticks_per_long) {
            self.drl_step(view);
        }
        self.tick_count += 1;
        self.controller.scale_all(view, cmds);
    }

    fn healthy(&self) -> bool {
        self.policy_healthy
    }

    /// Episode-end flush: the last `(state, action)` pair would otherwise
    /// be dropped and no transition would ever carry `done: true`. Close
    /// the open window over its partial elapsed interval, push the
    /// terminal transition, and log the partial step.
    fn on_run_end(&mut self, view: &ServerView<'_>) {
        if self.pending.is_none() {
            return;
        }
        let next_state = self.observer.observe(view);
        if let Some((r, terms, elapsed)) = self.close_window(view, &next_state, true) {
            if elapsed > 0 {
                self.push_log(view, &next_state, r, terms, elapsed);
            }
        }
        self.last_step_t = Some(view.now);
    }

    fn name(&self) -> &str {
        match self.mode {
            Mode::Train => "deeppower-train",
            Mode::Eval => "deeppower",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deeppower_drl::DdpgConfig;
    use deeppower_simd_server::{RunOptions, Server, ServerConfig, MILLISECOND, SECOND};
    use deeppower_workload::{constant_rate_arrivals, App, AppSpec};

    fn agent(warmup: usize) -> Ddpg {
        Ddpg::new(DdpgConfig {
            state_dim: STATE_DIM,
            action_dim: 2,
            warmup,
            batch_size: 16,
            seed: 1,
            ..Default::default()
        })
    }

    fn small_cfg() -> DeepPowerConfig {
        DeepPowerConfig {
            short_time: MILLISECOND,
            long_time: 100 * MILLISECOND, // fast DRL cadence for tests
            ..Default::default()
        }
    }

    #[test]
    fn drl_steps_fire_at_long_time_cadence() {
        let mut ag = agent(1_000_000); // never trains in this test
        let cfg = small_cfg();
        let mut gov = DeepPowerGovernor::new(&mut ag, cfg, Mode::Train);
        let spec = AppSpec::get(App::Xapian);
        let arrivals = constant_rate_arrivals(&spec, 2000.0, SECOND, 3);
        let server = Server::new(ServerConfig::paper_default(8));
        let _ = server.run(&arrivals, &mut gov, RunOptions::default());
        // 1 s of workload at a 100 ms DRL period → ~10-12 steps.
        assert!(
            (9..=14).contains(&gov.log.len()),
            "unexpected DRL step count {}",
            gov.log.len()
        );
    }

    #[test]
    fn transitions_accumulate_in_replay() {
        let mut ag = agent(1_000_000);
        let mut gov = DeepPowerGovernor::new(&mut ag, small_cfg(), Mode::Train);
        let spec = AppSpec::get(App::Xapian);
        let arrivals = constant_rate_arrivals(&spec, 2000.0, SECOND, 4);
        let server = Server::new(ServerConfig::paper_default(8));
        let _ = server.run(&arrivals, &mut gov, RunOptions::default());
        let steps = gov.log.len();
        drop(gov);
        // Every logged step produced a transition: each interior step
        // closes the previous window, and the episode-end flush emits the
        // final (terminal) one instead of dropping it.
        assert_eq!(ag.replay.len(), steps);
        let done_flags: Vec<bool> = ag.replay.iter().map(|t| t.done).collect();
        assert_eq!(
            done_flags.iter().filter(|&&d| d).count(),
            1,
            "exactly one terminal"
        );
        assert_eq!(
            done_flags.last(),
            Some(&true),
            "the last transition is terminal"
        );
    }

    #[test]
    fn training_mode_performs_updates_once_warm() {
        let mut ag = agent(4);
        let mut gov = DeepPowerGovernor::new(&mut ag, small_cfg(), Mode::Train);
        let spec = AppSpec::get(App::Xapian);
        let arrivals = constant_rate_arrivals(&spec, 2000.0, 3 * SECOND, 5);
        let server = Server::new(ServerConfig::paper_default(8));
        let _ = server.run(&arrivals, &mut gov, RunOptions::default());
        assert!(gov.updates_done > 0, "no DDPG updates happened");
    }

    #[test]
    fn eval_mode_never_updates_and_is_deterministic() {
        let spec = AppSpec::get(App::Xapian);
        let arrivals = constant_rate_arrivals(&spec, 2000.0, SECOND, 6);
        let server = Server::new(ServerConfig::paper_default(8));

        let run = |seed| {
            let mut ag = Ddpg::new(DdpgConfig {
                state_dim: STATE_DIM,
                action_dim: 2,
                seed,
                ..Default::default()
            });
            let mut gov = DeepPowerGovernor::new(&mut ag, small_cfg(), Mode::Eval);
            let res = server.run(&arrivals, &mut gov, RunOptions::default());
            let updates = gov.updates_done;
            let actions: Vec<(f32, f32)> = gov
                .log
                .iter()
                .map(|l| (l.base_freq, l.scaling_coef))
                .collect();
            (res.energy_j, updates, actions)
        };
        let (e1, u1, a1) = run(7);
        let (e2, _, a2) = run(7);
        assert_eq!(u1, 0);
        assert_eq!(e1, e2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn actions_stay_in_unit_box() {
        let mut ag = agent(0);
        let mut gov = DeepPowerGovernor::new(&mut ag, small_cfg(), Mode::Train);
        let spec = AppSpec::get(App::Xapian);
        let arrivals = constant_rate_arrivals(&spec, 3000.0, 2 * SECOND, 8);
        let server = Server::new(ServerConfig::paper_default(8));
        let _ = server.run(&arrivals, &mut gov, RunOptions::default());
        for l in &gov.log {
            assert!((0.0..=1.0).contains(&l.base_freq));
            assert!((0.0..=1.0).contains(&l.scaling_coef));
        }
    }

    #[test]
    fn log_power_matches_simulated_average() {
        let mut ag = agent(1_000_000);
        let mut gov = DeepPowerGovernor::new(&mut ag, small_cfg(), Mode::Eval);
        let spec = AppSpec::get(App::Xapian);
        let arrivals = constant_rate_arrivals(&spec, 2000.0, 2 * SECOND, 9);
        let server = Server::new(ServerConfig::paper_default(8));
        let res = server.run(&arrivals, &mut gov, RunOptions::default());
        // Mean of per-step powers ≈ overall average power (same socket).
        // Every step — including the first and the partial final one — is
        // now averaged over its actually-elapsed window, so no entry needs
        // to be skipped.
        let mean_step: f64 = gov.log.iter().map(|l| l.power_w).sum::<f64>() / gov.log.len() as f64;
        assert!(
            (mean_step - res.avg_power_w).abs() / res.avg_power_w < 0.25,
            "per-step power {mean_step} vs run average {}",
            res.avg_power_w
        );
    }

    #[test]
    fn three_action_agent_co_manages_admission_deterministically() {
        use deeppower_simd_server::{AdmissionMode, OverloadPlan};
        let spec = AppSpec::get(App::Xapian);
        let arrivals = constant_rate_arrivals(&spec, 2000.0, SECOND, 12);
        let server = Server::new(ServerConfig::paper_default(8));
        let run = || {
            let mut ag = Ddpg::new(DdpgConfig {
                state_dim: STATE_DIM,
                action_dim: 3,
                seed: 11,
                ..Default::default()
            });
            let mut gov = DeepPowerGovernor::new(&mut ag, small_cfg(), Mode::Eval);
            let opts = RunOptions {
                overload: OverloadPlan {
                    seed: 5,
                    admission: AdmissionMode::Drl,
                    ..OverloadPlan::none()
                },
                ..Default::default()
            };
            let res = server.run(&arrivals, &mut gov, opts);
            let fracs: Vec<f32> = gov.log.iter().map(|l| l.admit_frac).collect();
            (res, fracs)
        };
        let (r1, f1) = run();
        let (r2, f2) = run();
        assert!(!f1.is_empty());
        assert!(f1.iter().all(|f| (0.0..=1.0).contains(f)));
        assert_eq!(f1, f2, "admission actions must replay bit-identically");
        assert_eq!(r1.records, r2.records);
        assert_eq!(r1.shed, r2.shed);
        // Conservation still holds with the DRL-managed gate in the loop.
        assert_eq!(r1.goodput + r1.wasted, r1.stats.count);
    }

    #[test]
    fn poisoned_actor_output_never_escapes_the_admission_clamp() {
        // Satellite audit of `admit_frac` clamping: an actor whose
        // weights have gone NaN must degrade to admit-all, and every
        // admission value that reaches the queue gate and the step log
        // stays in [0, 1] — never NaN, never out of range.
        use deeppower_simd_server::{AdmissionMode, OverloadPlan};
        let spec = AppSpec::get(App::Xapian);
        let arrivals = constant_rate_arrivals(&spec, 2000.0, SECOND, 12);
        let server = Server::new(ServerConfig::paper_default(8));
        let mut ag = Ddpg::new(DdpgConfig {
            state_dim: STATE_DIM,
            action_dim: 3,
            seed: 11,
            ..Default::default()
        });
        let poisoned = vec![f32::NAN; ag.actor_snapshot().len()];
        ag.load_actor_snapshot(&poisoned);
        let mut gov = DeepPowerGovernor::new(&mut ag, small_cfg(), Mode::Eval);
        let opts = RunOptions {
            overload: OverloadPlan {
                seed: 5,
                admission: AdmissionMode::Drl,
                ..OverloadPlan::none()
            },
            ..Default::default()
        };
        let res = server.run(&arrivals, &mut gov, opts);
        assert!(!gov.log.is_empty());
        for l in &gov.log {
            assert!(
                (0.0..=1.0).contains(&l.admit_frac),
                "admit_frac {} escaped [0, 1]",
                l.admit_frac
            );
            assert_eq!(
                l.admit_frac, 1.0,
                "non-finite admission head must degrade to admit-all"
            );
            assert!((0.0..=1.0).contains(&l.base_freq));
            assert!(l.scaling_coef >= 0.0);
        }
        // Admit-all: the DRL gate sheds nothing, and conservation holds.
        assert_eq!(res.shed, 0);
        assert_eq!(res.goodput + res.wasted, res.stats.count);
    }

    #[test]
    #[should_panic(expected = "state dim mismatch")]
    fn rejects_mismatched_agent() {
        let mut ag = Ddpg::new(DdpgConfig {
            state_dim: 4,
            ..Default::default()
        });
        let _ = DeepPowerGovernor::new(&mut ag, small_cfg(), Mode::Eval);
    }
}
