//! Safety/degradation layer — a [`Governor`] combinator that bounds how
//! badly any wrapped policy (learned or heuristic) can degrade the SLA
//! when the platform or the policy itself misbehaves.
//!
//! [`SafetyGovernor`] composes over any [`Governor`] the same way
//! [`crate::SleepAware`] does and adds three independent mechanisms:
//!
//! 1. **SLA watchdog** — a rolling window of request completions tracks
//!    the recent timeout rate; when it crosses
//!    [`SafetyConfig::timeout_rate_threshold`] the wrapper snaps every
//!    busy core to turbo for [`SafetyConfig::turbo_hold_ns`], re-issuing
//!    the command every tick so DVFS faults that drop a write get
//!    retried.
//! 2. **Hold-last-good-action** — when the wrapped policy goes silent on
//!    a core (no command for [`SafetyConfig::stale_action_ns`]) the last
//!    commanded frequency is re-issued, and after
//!    [`SafetyConfig::decay_after_ns`] of continued silence the held
//!    command decays *upward* toward the plan's max frequency (the safe
//!    direction for an LC application: burn power, not latency).
//! 3. **MaxFreq fallback** — when the wrapped policy reports
//!    [`Governor::healthy`]` == false` (e.g. a DRL actor emitting NaN),
//!    every core is pinned at the nominal max frequency until the policy
//!    recovers.
//!
//! When none of the mechanisms trigger the wrapper is byte-transparent:
//! it forwards every hook and never touches the command buffer, so a
//! fault-free run of `SafetyGovernor(P)` is bit-identical to `P` (the
//! `robustness_matrix` bench asserts this).
//!
//! Every intervention is recorded as a typed
//! [`deeppower_telemetry::SafetyAction`] event.

use std::collections::VecDeque;

use deeppower_simd_server::{FreqCommands, Governor, Nanos, Request, ServerView};
use deeppower_telemetry::{event, Event, Recorder};

/// Thresholds for the three safety mechanisms. Defaults follow the
/// paper's time scales: the watchdog window is one `LongTime` (1 s) so
/// it reacts at the same granularity as the DRL agent, and the turbo
/// hold is 50 `ShortTime`s — long enough to drain a queue built up
/// during a fault, short enough to give control back quickly.
#[derive(Clone, Copy, Debug)]
pub struct SafetyConfig {
    /// Rolling window over which the timeout rate is measured.
    pub window_ns: Nanos,
    /// Timeout fraction above which the watchdog trips.
    pub timeout_rate_threshold: f64,
    /// Minimum completions inside the window before the rate is trusted
    /// (avoids tripping on the first timed-out request of a run).
    pub min_completions: usize,
    /// How long a watchdog trip holds busy cores at turbo.
    pub turbo_hold_ns: Nanos,
    /// Silence (no command for a core) after which the last command is
    /// re-issued.
    pub stale_action_ns: Nanos,
    /// Silence after which the held command starts decaying toward the
    /// plan's max frequency.
    pub decay_after_ns: Nanos,
}

impl Default for SafetyConfig {
    fn default() -> Self {
        Self {
            window_ns: 1_000_000_000,
            timeout_rate_threshold: 0.3,
            min_completions: 16,
            turbo_hold_ns: 50_000_000,
            stale_action_ns: 10_000_000,
            decay_after_ns: 100_000_000,
        }
    }
}

impl SafetyConfig {
    /// Panics on thresholds that cannot work (zero window, rate outside
    /// `(0, 1]`, decay before hold).
    fn validate(&self) {
        assert!(self.window_ns > 0, "watchdog window must be positive");
        assert!(
            self.timeout_rate_threshold > 0.0 && self.timeout_rate_threshold <= 1.0,
            "timeout_rate_threshold must be in (0, 1]"
        );
        assert!(
            self.stale_action_ns <= self.decay_after_ns,
            "hold threshold must not exceed the decay one"
        );
    }
}

/// Governor combinator adding SLA-watchdog / hold-last-action / MaxFreq
/// fallback protection to `inner`. See the module docs for semantics.
pub struct SafetyGovernor<G> {
    pub inner: G,
    cfg: SafetyConfig,
    name: String,
    recorder: Recorder,
    /// Rolling `(completion time, timed_out)` window for the watchdog.
    window: VecDeque<(Nanos, bool)>,
    timeouts_in_window: usize,
    /// Turbo boost active until this instant (0 = inactive).
    boost_until: Nanos,
    /// Last frequency the wrapped policy commanded per core, and when.
    last_cmd: Vec<Option<u32>>,
    last_cmd_t: Vec<Nanos>,
    /// Edge detector for the MaxFreq fallback event.
    was_healthy: bool,
    /// Number of watchdog trips (rising edges, not boosted ticks).
    pub watchdog_trips: u64,
    /// Number of re-issued (held) commands.
    pub holds: u64,
    /// Number of unhealthy episodes that triggered the MaxFreq fallback.
    pub fallbacks: u64,
}

impl<G: Governor> SafetyGovernor<G> {
    pub fn new(inner: G, n_cores: usize, cfg: SafetyConfig) -> Self {
        cfg.validate();
        assert!(n_cores > 0, "need at least one core");
        let name = format!("safe+{}", inner.name());
        Self {
            inner,
            cfg,
            name,
            recorder: Recorder::disabled(),
            window: VecDeque::new(),
            timeouts_in_window: 0,
            boost_until: 0,
            last_cmd: vec![None; n_cores],
            last_cmd_t: vec![0; n_cores],
            was_healthy: true,
            watchdog_trips: 0,
            holds: 0,
            fallbacks: 0,
        }
    }

    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    fn record(&self, t: Nanos, action: &str, core: i64) {
        self.recorder.emit(|| {
            Event::SafetyAction(event::SafetyAction {
                t,
                action: action.to_string(),
                core,
            })
        });
        match action {
            "watchdog-turbo" => self.recorder.add("safety.watchdog_trips", 1),
            "hold-decay" => self.recorder.add("safety.hold_decays", 1),
            "maxfreq-fallback" => self.recorder.add("safety.fallbacks", 1),
            _ => {}
        }
    }

    /// Record any command the wrapped policy issued this callback so the
    /// hold mechanism knows what "last good" means per core.
    fn latch_commands(&mut self, now: Nanos, cmds: &FreqCommands) {
        for core in 0..self.last_cmd.len() {
            if let Some(mhz) = cmds.get(core) {
                self.last_cmd[core] = Some(mhz);
                self.last_cmd_t[core] = now;
            }
        }
    }

    fn prune_window(&mut self, now: Nanos) {
        let horizon = now.saturating_sub(self.cfg.window_ns);
        while let Some(&(t, timed_out)) = self.window.front() {
            if t >= horizon {
                break;
            }
            self.window.pop_front();
            if timed_out {
                self.timeouts_in_window -= 1;
            }
        }
    }
}

impl<G: Governor> Governor for SafetyGovernor<G> {
    fn on_tick(&mut self, view: &ServerView<'_>, cmds: &mut FreqCommands) {
        let now = view.now;
        self.inner.on_tick(view, cmds);

        // 1. Hold / decay: re-issue the last command for cores the
        //    wrapped policy went silent on. Decay steps the held command
        //    toward max — over-clocking is the recoverable failure mode.
        let (min_mhz, max_mhz) = cmds.freq_band_mhz();
        let decay_step = ((max_mhz - min_mhz) / 10).max(1);
        for core in 0..self.last_cmd.len() {
            if cmds.get(core).is_some() {
                self.last_cmd[core] = cmds.get(core);
                self.last_cmd_t[core] = now;
                continue;
            }
            let Some(held) = self.last_cmd[core] else {
                continue;
            };
            let silent_for = now.saturating_sub(self.last_cmd_t[core]);
            if silent_for < self.cfg.stale_action_ns {
                continue;
            }
            let held = if silent_for >= self.cfg.decay_after_ns && held < max_mhz {
                let stepped = (held + decay_step).min(max_mhz);
                self.last_cmd[core] = Some(stepped);
                self.record(now, "hold-decay", core as i64);
                stepped
            } else {
                held
            };
            cmds.set(core, held);
            self.holds += 1;
        }

        // 2. SLA watchdog: trip on a high rolling timeout rate, then
        //    re-issue turbo on busy cores every tick until the hold
        //    expires (re-issuing retries through injected DVFS drops).
        self.prune_window(now);
        let completions = self.window.len();
        if completions >= self.cfg.min_completions && now >= self.boost_until {
            let rate = self.timeouts_in_window as f64 / completions as f64;
            if rate > self.cfg.timeout_rate_threshold {
                self.boost_until = now + self.cfg.turbo_hold_ns;
                self.watchdog_trips += 1;
                self.record(now, "watchdog-turbo", -1);
            }
        }
        if now < self.boost_until {
            for (core, cv) in view.cores.iter().enumerate() {
                if cv.busy() {
                    cmds.set_turbo(core);
                }
            }
        }

        // 3. MaxFreq fallback: a policy emitting non-finite actions gets
        //    every core pinned at nominal max until it recovers.
        let healthy = self.inner.healthy();
        if !healthy {
            if self.was_healthy {
                self.fallbacks += 1;
                self.record(now, "maxfreq-fallback", -1);
            }
            cmds.set_all(max_mhz);
        }
        self.was_healthy = healthy;
    }

    fn on_request_start(
        &mut self,
        view: &ServerView<'_>,
        core_id: usize,
        req: &Request,
        cmds: &mut FreqCommands,
    ) {
        self.inner.on_request_start(view, core_id, req, cmds);
        self.latch_commands(view.now, cmds);
    }

    fn on_request_complete(&mut self, now: Nanos, core_id: usize, req: &Request, latency: Nanos) {
        let timed_out = latency > req.sla;
        self.window.push_back((now, timed_out));
        if timed_out {
            self.timeouts_in_window += 1;
        }
        self.inner.on_request_complete(now, core_id, req, latency);
    }

    fn on_run_end(&mut self, view: &ServerView<'_>) {
        self.inner.on_run_end(view);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn healthy(&self) -> bool {
        // The wrapper itself is always healthy: it exists to absorb the
        // wrapped policy's failures, so it must not propagate them.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread_controller::{ControllerParams, ThreadController};
    use deeppower_simd_server::{
        FaultPlan, FixedFrequency, RunOptions, Server, ServerConfig, MILLISECOND, SECOND,
    };
    use deeppower_workload::{constant_rate_arrivals, App, AppSpec};

    fn workload(load: f64, seed: u64) -> (ServerConfig, Vec<Request>) {
        let spec = AppSpec::get(App::Masstree);
        let cfg = ServerConfig::paper_default(spec.n_threads);
        let arrivals = constant_rate_arrivals(&spec, spec.rps_for_load(load), SECOND, seed);
        (cfg, arrivals)
    }

    #[test]
    fn transparent_without_faults() {
        // No watchdog trip, no stale commands, healthy policy: the
        // wrapper must be bit-identical to the plain governor.
        let (cfg, arrivals) = workload(0.4, 7);
        let server = Server::new(cfg);
        let params = ControllerParams::new(0.3, 1.0);
        let mut plain = ThreadController::new(params);
        let base = server.run(&arrivals, &mut plain, RunOptions::default());
        let mut safe = SafetyGovernor::new(
            ThreadController::new(params),
            server.config().n_cores,
            SafetyConfig::default(),
        );
        let res = server.run(&arrivals, &mut safe, RunOptions::default());
        assert_eq!(res.energy_j.to_bits(), base.energy_j.to_bits());
        assert_eq!(res.records, base.records);
        assert_eq!(safe.watchdog_trips, 0);
        assert_eq!(safe.holds, 0);
        assert_eq!(safe.fallbacks, 0);
    }

    #[test]
    fn name_composes_over_inner() {
        let safe = SafetyGovernor::new(FixedFrequency { mhz: 800 }, 1, SafetyConfig::default());
        assert_eq!(safe.name(), "safe+fixed");
    }

    #[test]
    fn watchdog_bounds_timeouts_under_dvfs_failures() {
        // A low-frequency thread controller under near-certain DVFS
        // write failures gets stuck slow and times out heavily; the
        // watchdog's re-issued turbo commands must claw the timeout
        // rate back down.
        let (cfg, arrivals) = workload(0.7, 11);
        let server = Server::new(cfg);
        let faults = FaultPlan {
            seed: 5,
            dvfs_fail_prob: 0.9,
            ..FaultPlan::none()
        };
        let opts = RunOptions {
            faults,
            ..Default::default()
        };
        let params = ControllerParams::new(0.0, 0.4);
        let mut plain = ThreadController::new(params);
        let base = server.run(&arrivals, &mut plain, opts);
        let mut safe = SafetyGovernor::new(
            ThreadController::new(params),
            server.config().n_cores,
            SafetyConfig::default(),
        );
        let res = server.run(&arrivals, &mut safe, opts);
        assert!(
            base.stats.timeout_rate() > 0.3,
            "scenario too mild to exercise the watchdog: {:.3}",
            base.stats.timeout_rate()
        );
        assert!(safe.watchdog_trips > 0, "watchdog never tripped");
        assert!(
            res.stats.timeout_rate() < base.stats.timeout_rate() * 0.5,
            "watchdog barely helped: {:.3} vs {:.3}",
            res.stats.timeout_rate(),
            base.stats.timeout_rate()
        );
    }

    /// A policy that commands once and then goes silent forever.
    struct OneShot {
        mhz: u32,
        issued: bool,
    }

    impl Governor for OneShot {
        fn on_tick(&mut self, _view: &ServerView<'_>, cmds: &mut FreqCommands) {
            if !self.issued {
                cmds.set_all(self.mhz);
                self.issued = true;
            }
        }

        fn name(&self) -> &str {
            "one-shot"
        }
    }

    #[test]
    fn held_commands_decay_toward_max() {
        let (cfg, arrivals) = workload(0.3, 3);
        let n = cfg.n_cores;
        let server = Server::new(cfg);
        let rec = Recorder::ring(1 << 16);
        let mut safe = SafetyGovernor::new(
            OneShot {
                mhz: 800,
                issued: false,
            },
            n,
            SafetyConfig::default(),
        )
        .with_recorder(rec.clone());
        let _ = server.run(&arrivals, &mut safe, RunOptions::default());
        assert!(safe.holds > 0, "silent policy never triggered a hold");
        assert!(
            rec.counter("safety.hold_decays") > 0,
            "held command never decayed"
        );
        // After decay completes every held command sits at nominal max.
        let plan = deeppower_simd_server::FreqPlan::xeon_gold_5218r();
        for held in &safe.last_cmd {
            assert_eq!(*held, Some(plan.max_mhz()));
        }
    }

    /// A policy that reports unhealthy from the first tick.
    struct Broken;

    impl Governor for Broken {
        fn name(&self) -> &str {
            "broken"
        }

        fn healthy(&self) -> bool {
            false
        }
    }

    #[test]
    fn unhealthy_policy_falls_back_to_max_frequency() {
        let (cfg, arrivals) = workload(0.5, 9);
        let n = cfg.n_cores;
        let server = Server::new(cfg);
        // Max-frequency reference: what the fallback should converge to.
        let plan = deeppower_simd_server::FreqPlan::xeon_gold_5218r();
        let mut maxed = FixedFrequency {
            mhz: plan.max_mhz(),
        };
        let reference = server.run(&arrivals, &mut maxed, RunOptions::default());
        let mut safe = SafetyGovernor::new(Broken, n, SafetyConfig::default());
        let res = server.run(&arrivals, &mut safe, RunOptions::default());
        assert_eq!(safe.fallbacks, 1, "fallback should fire once (one edge)");
        assert_eq!(res.stats.count, reference.stats.count);
        // Identical commands from the first tick: identical outcome.
        assert_eq!(res.energy_j.to_bits(), reference.energy_j.to_bits());
    }

    #[test]
    #[should_panic(expected = "hold threshold")]
    fn config_threshold_order_enforced() {
        let cfg = SafetyConfig {
            stale_action_ns: 10 * MILLISECOND,
            decay_after_ns: MILLISECOND,
            ..SafetyConfig::default()
        };
        let _ = SafetyGovernor::new(FixedFrequency { mhz: 800 }, 1, cfg);
    }
}
