//! Adaptivity scenarios — the paper's second claimed advantage (§5.3):
//! "DeepPower is more adaptive to the dynamic workload … it will learn to
//! adapt to changes in RPS with the interaction from the environment."
//!
//! These tests inject a flash-crowd load step and verify the trained
//! hierarchical policy visibly reacts (frequency up under the burst, queue
//! recovery afterwards), and that online mode keeps learning in
//! deployment.

use deeppower_suite::deeppower::{train, DeepPowerGovernor, Mode, TrainConfig};
use deeppower_suite::sim::{RunOptions, Server, ServerConfig, SECOND};
use deeppower_suite::workload::{trace_arrivals, App, AppSpec, DiurnalTrace};

fn quick_policy(seed: u64) -> deeppower_suite::deeppower::TrainedPolicy {
    let mut cfg = TrainConfig::for_app(App::Xapian);
    cfg.episodes = 4;
    cfg.episode_s = 40;
    cfg.seed = seed;
    cfg.deeppower.ddpg.warmup = 16;
    cfg.deeppower.ddpg.batch_size = 32;
    train(&cfg).0
}

/// Step workload: low → burst → low.
fn step_trace(spec: &AppSpec) -> DiurnalTrace {
    let low = spec.rps_for_load(0.35);
    let high = spec.rps_for_load(0.80);
    let mut samples = vec![low; 15];
    samples.extend(vec![high; 15]);
    samples.extend(vec![low; 15]);
    DiurnalTrace::from_samples(SECOND, samples)
}

#[test]
fn policy_reacts_to_flash_crowd() {
    let spec = AppSpec::get(App::Xapian);
    let policy = quick_policy(31);
    let server = Server::new(ServerConfig::paper_default(spec.n_threads));
    let trace = step_trace(&spec);
    let arrivals = trace_arrivals(&spec, &trace, 77);

    let mut agent = policy.build_agent();
    let mut gov = DeepPowerGovernor::new(&mut agent, policy.deeppower, Mode::Eval);
    let res = server.run(
        &arrivals,
        &mut gov,
        RunOptions {
            tick_ns: policy.deeppower.short_time,
            ..Default::default()
        },
    );

    // Mean commanded frequency during the burst vs the initial low phase.
    let phase_freq = |from_s: u64, to_s: u64| {
        let logs: Vec<_> = gov
            .log
            .iter()
            .filter(|l| l.t >= from_s * SECOND && l.t < to_s * SECOND)
            .collect();
        logs.iter().map(|l| l.avg_freq_mhz).sum::<f64>() / logs.len().max(1) as f64
    };
    let low_phase = phase_freq(2, 15);
    let burst_phase = phase_freq(16, 30);
    assert!(
        burst_phase > low_phase + 50.0,
        "policy did not raise frequency under the burst: {low_phase:.0} -> {burst_phase:.0} MHz"
    );

    // The queue built during the burst must drain by the end of the run.
    let peak_queue = gov.log.iter().map(|l| l.queue_len).max().unwrap_or(0);
    let final_queue = gov.log.last().map(|l| l.queue_len).unwrap_or(0);
    assert!(
        final_queue <= peak_queue / 2,
        "queue failed to recover after the burst: peak {peak_queue}, final {final_queue}"
    );
    assert!(res.stats.count as usize == arrivals.len());
}

#[test]
fn online_mode_keeps_learning_in_deployment() {
    let spec = AppSpec::get(App::Xapian);
    let policy = quick_policy(32);
    let server = Server::new(ServerConfig::paper_default(spec.n_threads));
    let trace = step_trace(&spec);
    let arrivals = trace_arrivals(&spec, &trace, 78);

    // Frozen deployment: no learning.
    let mut frozen_agent = policy.build_agent();
    let mut frozen = DeepPowerGovernor::new(&mut frozen_agent, policy.deeppower, Mode::Eval);
    let _ = server.run(
        &arrivals,
        &mut frozen,
        RunOptions {
            tick_ns: policy.deeppower.short_time,
            ..Default::default()
        },
    );
    assert_eq!(frozen.updates_done, 0);

    // Online deployment: the replay keeps filling and updates continue —
    // Algorithm 2 never has to stop.
    let mut online_agent = policy.build_agent();
    let before = online_agent.actor_snapshot();
    let mut online = DeepPowerGovernor::new(&mut online_agent, policy.deeppower, Mode::Train);
    let _ = server.run(
        &arrivals,
        &mut online,
        RunOptions {
            tick_ns: policy.deeppower.short_time,
            ..Default::default()
        },
    );
    assert!(online.updates_done > 0, "online mode never trained");
    drop(online);
    assert!(online_agent.replay.len() > 10);
    assert_ne!(
        online_agent.actor_snapshot(),
        before,
        "weights did not move online"
    );
}
