//! End-to-end integration: train a small DeepPower agent, evaluate it, and
//! compare against the unmanaged baseline and the prior methods — the full
//! pipeline every figure bench relies on, at a size that runs in CI.

use deeppower_suite::baselines::{
    collect_profile, max_freq_governor, GeminiConfig, GeminiGovernor, RetailConfig, RetailGovernor,
};
use deeppower_suite::deeppower::train::trace_for;
use deeppower_suite::deeppower::{evaluate, train, DeepPowerGovernor, Mode, TrainConfig};
use deeppower_suite::sim::{FreqPlan, RunOptions, Server, ServerConfig, TraceConfig};
use deeppower_suite::workload::{trace_arrivals, App, AppSpec};

fn small_cfg(app: App) -> TrainConfig {
    let mut cfg = TrainConfig::for_app(app);
    cfg.episodes = 5;
    cfg.episode_s = 30;
    cfg.seed = 5;
    // Keep CI runtime bounded: a gentler peak than the paper-scale runs.
    cfg.peak_load = 0.6;
    // Tiny episodes: shrink the replay warm-up and batch so learning
    // actually starts within the 60-step budget.
    cfg.deeppower.ddpg.warmup = 8;
    cfg.deeppower.ddpg.batch_size = 16;
    cfg
}

#[test]
fn deeppower_saves_power_and_holds_sla_on_xapian() {
    let app = App::Xapian;
    let spec = AppSpec::get(app);
    let (policy, report) = train(&small_cfg(app));
    assert!(report.updates > 0);

    let server = Server::new(ServerConfig::paper_default(spec.n_threads));
    let trace = trace_for(&spec, 0.6, 20, 77);
    let arrivals = trace_arrivals(&spec, &trace, 4242);

    let mut maxf = max_freq_governor();
    let base = server.run(&arrivals, &mut maxf, RunOptions::default());

    let mut agent = policy.build_agent();
    let mut gov = DeepPowerGovernor::new(&mut agent, policy.deeppower, Mode::Eval);
    let managed = server.run(
        &arrivals,
        &mut gov,
        RunOptions {
            tick_ns: policy.deeppower.short_time,
            ..Default::default()
        },
    );

    assert!(
        managed.avg_power_w < base.avg_power_w * 0.92,
        "DeepPower saved too little: {:.1} vs {:.1} W",
        managed.avg_power_w,
        base.avg_power_w
    );
    // Small training budget: allow slack over the paper's strict 1% bound
    // (the benches exercise fully-trained policies).
    assert!(
        managed.stats.timeout_rate() < 0.10,
        "timeout rate {:.3} too high",
        managed.stats.timeout_rate()
    );
}

#[test]
fn all_policies_conserve_requests_on_shared_workload() {
    let app = App::Masstree;
    let spec = AppSpec::get(app);
    let server = Server::new(ServerConfig::paper_default(spec.n_threads));
    let trace = trace_for(&spec, 0.6, 10, 3);
    let arrivals = trace_arrivals(&spec, &trace, 99);
    let profile = collect_profile(&spec, 0.4, 2, 7);

    let mut results = Vec::new();
    let mut maxf = max_freq_governor();
    results.push(server.run(&arrivals, &mut maxf, RunOptions::default()));
    let mut retail = RetailGovernor::train(
        &profile,
        FreqPlan::xeon_gold_5218r(),
        RetailConfig::default(),
    );
    results.push(server.run(&arrivals, &mut retail, RunOptions::default()));
    let mut gemini = GeminiGovernor::train(
        &profile,
        FreqPlan::xeon_gold_5218r(),
        spec.n_threads,
        GeminiConfig::default(),
        1,
    );
    results.push(server.run(&arrivals, &mut gemini, RunOptions::default()));

    for res in &results {
        assert_eq!(
            res.stats.count as usize,
            arrivals.len(),
            "requests lost or duplicated"
        );
        assert!(res.energy_j > 0.0);
        assert!(res.avg_power_w > 20.0, "power below the static floor");
    }
}

#[test]
fn evaluate_roundtrip_is_deterministic_and_logged() {
    let app = App::ImgDnn;
    let (policy, _) = train(&small_cfg(app));
    let a = evaluate(&policy, 0.6, 10, 123, TraceConfig::default());
    let b = evaluate(&policy, 0.6, 10, 123, TraceConfig::default());
    assert_eq!(a.sim.energy_j, b.sim.energy_j);
    assert_eq!(a.sim.stats.count, b.sim.stats.count);
    assert!(
        a.log.len() >= 9,
        "expected ~one StepLog per second, got {}",
        a.log.len()
    );
    // Telemetry is internally consistent: per-step arrivals sum to the
    // run's total.
    let total: u64 = a.log.iter().map(|l| l.num_req).sum();
    assert_eq!(total, a.sim.stats.count);
}

#[test]
fn policy_checkpoint_survives_disk_roundtrip() {
    let (policy, _) = train(&small_cfg(App::Masstree));
    let path = std::env::temp_dir().join("deeppower-integration-ckpt.json");
    policy.save(&path).unwrap();
    let loaded = deeppower_suite::deeppower::TrainedPolicy::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let s = [0.3f32; 8];
    assert_eq!(policy.build_agent().act(&s), loaded.build_agent().act(&s));
}
