//! Property-based tests over the neural-network substrate: algebraic
//! identities of the matrix kernels and structural invariants of the
//! parameter-visiting machinery that optimizers and target networks
//! depend on.

use deeppower_suite::drl::{Critic, TwoHeadActor};
use deeppower_suite::nn::{ActivationKind, Matrix, Params, Sequential};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// (A·B)·C == A·(B·C) within f32 tolerance.
    #[test]
    fn matmul_is_associative(
        a in arb_matrix(3, 4),
        b in arb_matrix(4, 2),
        c in arb_matrix(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// The transposed kernels agree with the plain one.
    #[test]
    fn transposed_kernels_consistent(
        a in arb_matrix(4, 3),
        b in arb_matrix(4, 2),
    ) {
        // aᵀ·b via t_matmul must equal materialized transpose times b.
        let via_kernel = a.t_matmul(&b);
        let mut at = Matrix::zeros(3, 4);
        for r in 0..4 {
            for c in 0..3 {
                at.set(c, r, a.get(r, c));
            }
        }
        let explicit = at.matmul(&b);
        for (x, y) in via_kernel.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// hconcat/hsplit are exact inverses.
    #[test]
    fn hconcat_hsplit_roundtrip(
        a in arb_matrix(3, 2),
        b in arb_matrix(3, 4),
    ) {
        let joined = a.hconcat(&b);
        let (l, r) = joined.hsplit(2);
        prop_assert_eq!(l, a);
        prop_assert_eq!(r, b);
    }

    /// snapshot → load_snapshot is the identity for every network shape we
    /// use, and soft_update with tau=1 equals a plain copy.
    #[test]
    fn snapshot_roundtrip_and_full_soft_update(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::mlp(
            &mut rng,
            &[5, 7, 3],
            ActivationKind::Relu,
            ActivationKind::Identity,
        );
        let snap = net.snapshot();
        prop_assert_eq!(snap.len(), net.num_params());
        // Perturb, restore, verify.
        net.visit_params_mut(&mut |w, _| w.iter_mut().for_each(|x| *x += 1.0));
        net.load_snapshot(&snap);
        prop_assert_eq!(net.snapshot(), snap.clone());

        // soft_update(tau = 1) copies the source exactly.
        let mut rng2 = StdRng::seed_from_u64(seed + 1);
        let mut other = Sequential::mlp(
            &mut rng2,
            &[5, 7, 3],
            ActivationKind::Relu,
            ActivationKind::Identity,
        );
        other.soft_update_from(&snap, 1.0);
        prop_assert_eq!(other.snapshot(), snap);
    }

    /// Actor outputs are always inside the unit box, whatever the input.
    #[test]
    fn actor_outputs_bounded(
        seed in 0u64..200,
        state in proptest::collection::vec(-10.0f32..10.0, 8),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let actor = TwoHeadActor::paper_default(&mut rng, 8, 2);
        let a = actor.act(&state);
        prop_assert!(a.iter().all(|&x| (0.0..=1.0).contains(&x)), "{a:?}");
    }

    /// Critic Q-values are finite for bounded inputs and deterministic.
    #[test]
    fn critic_finite_and_deterministic(
        seed in 0u64..200,
        state in proptest::collection::vec(-5.0f32..5.0, 8),
        action in proptest::collection::vec(0.0f32..1.0, 2),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let critic = Critic::paper_default(&mut rng, 8, 2);
        let q1 = critic.q_value(&state, &action);
        let q2 = critic.q_value(&state, &action);
        prop_assert!(q1.is_finite());
        prop_assert_eq!(q1.to_bits(), q2.to_bits());
    }

    /// Gradient accumulators always match parameter shapes (the contract
    /// the optimizers' flat state relies on).
    #[test]
    fn grads_shadow_params(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Sequential::mlp(
            &mut rng,
            &[4, 9, 2],
            ActivationKind::Tanh,
            ActivationKind::Sigmoid,
        );
        let mut total_w = 0usize;
        let mut total_g = 0usize;
        let mut shapes_match = true;
        net.visit_params(&mut |w, g| {
            shapes_match &= w.len() == g.len();
            total_w += w.len();
            total_g += g.len();
        });
        prop_assert!(shapes_match, "a gradient buffer diverged from its parameters");
        prop_assert_eq!(total_w, net.num_params());
        prop_assert_eq!(total_g, total_w);
    }
}
