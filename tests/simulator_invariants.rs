//! Property-based invariants spanning the workload generator, the
//! simulator engine, and the controller — the cross-crate contracts every
//! experiment depends on.

use deeppower_suite::deeppower::{ControllerParams, ThreadController};
use deeppower_suite::sim::{
    ContentionModel, FixedFrequency, FreqPlan, PowerModel, Request, RunOptions, Server,
    ServerConfig, MILLISECOND, SECOND,
};
use deeppower_suite::workload::{constant_rate_arrivals, App, AppSpec};
use proptest::prelude::*;

fn arb_app() -> impl Strategy<Value = App> {
    prop_oneof![
        Just(App::Xapian),
        Just(App::Masstree),
        Just(App::Moses),
        Just(App::ImgDnn),
    ]
}

fn server(n_cores: usize) -> Server {
    Server::new(ServerConfig {
        n_cores,
        freq_plan: FreqPlan::xeon_gold_5218r(),
        power: PowerModel::default(),
        contention: ContentionModel::default(),
        initial_mhz: 2100,
        core_max_mhz: Vec::new(),
        cstates: deeppower_suite::sim::CStatePlan::none(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every generated request completes exactly once; latency is bounded
    /// below by the uncontended max-frequency service time.
    #[test]
    fn conservation_and_latency_floor(
        app in arb_app(),
        seed in 0u64..1000,
        load in 0.1f64..0.6,
        fixed_mhz_idx in 0usize..14,
    ) {
        let spec = AppSpec::get(app);
        let plan = FreqPlan::xeon_gold_5218r();
        let mhz = plan.levels_mhz[fixed_mhz_idx];
        let srv = server(4);
        let arrivals = constant_rate_arrivals(&spec, spec.rps_for_load(load).min(2000.0), SECOND, seed);
        prop_assume!(!arrivals.is_empty());
        let mut gov = FixedFrequency { mhz };
        let res = srv.run(&arrivals, &mut gov, RunOptions::default());

        prop_assert_eq!(res.stats.count as usize, arrivals.len());
        // Latency floor: the request's own work at the reference frequency
        // (actual run is at mhz <= reference, contended, possibly queued).
        for rec in &res.records {
            let req = arrivals.iter().find(|r| r.id == rec.id).unwrap();
            prop_assert!(
                rec.latency + 2 >= req.work_ref_ns,
                "latency {} below intrinsic work {}", rec.latency, req.work_ref_ns
            );
            prop_assert!(rec.started >= rec.arrival);
            prop_assert!(rec.completed > rec.started);
        }
    }

    /// Energy is bracketed by (idle power × duration, max power × duration)
    /// and the run is deterministic under a repeated seed.
    #[test]
    fn energy_bounds_and_determinism(
        seed in 0u64..500,
        load in 0.1f64..0.5,
    ) {
        let spec = AppSpec::get(App::Xapian);
        let srv = server(8);
        let arrivals = constant_rate_arrivals(&spec, spec.rps_for_load(load).min(3000.0), SECOND, seed);
        prop_assume!(!arrivals.is_empty());
        let run = |g: &mut FixedFrequency| srv.run(&arrivals, g, RunOptions::default());
        let a = run(&mut FixedFrequency { mhz: 1500 });
        let b = run(&mut FixedFrequency { mhz: 1500 });
        prop_assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits(), "nondeterministic energy");

        let model = PowerModel::default();
        let dur_s = a.duration_ns as f64 * 1e-9;
        let min_p = model.socket_power_w((0..8).map(|_| (800u32, false)));
        let max_p = model.socket_power_w((0..8).map(|_| (3000u32, true)));
        prop_assert!(a.energy_j >= min_p * dur_s * 0.5, "energy below plausible floor");
        prop_assert!(a.energy_j <= max_p * dur_s * 1.001, "energy above physical ceiling");
    }

    /// Running the same workload at a strictly higher fixed frequency never
    /// increases any request's latency (no anomalies in the engine's
    /// progress math).
    #[test]
    fn higher_frequency_never_hurts_latency(
        seed in 0u64..300,
    ) {
        let spec = AppSpec::get(App::Xapian);
        let srv = Server::new(ServerConfig {
            contention: ContentionModel::none(),
            ..ServerConfig::paper_default(2)
        });
        let arrivals = constant_rate_arrivals(&spec, 300.0, SECOND / 2, seed);
        prop_assume!(arrivals.len() > 3);
        let slow = srv.run(&arrivals, &mut FixedFrequency { mhz: 1000 }, RunOptions::default());
        let fast = srv.run(&arrivals, &mut FixedFrequency { mhz: 2100 }, RunOptions::default());
        let lat = |r: &deeppower_suite::sim::SimResult, id: u64| {
            r.records.iter().find(|x| x.id == id).unwrap().latency
        };
        for req in &arrivals {
            prop_assert!(
                lat(&fast, req.id) <= lat(&slow, req.id) + 2,
                "request {} got slower at higher frequency", req.id
            );
        }
    }

    /// The thread controller's score is monotone in both elapsed time and
    /// each of its two parameters.
    #[test]
    fn controller_score_monotonicity(
        base in 0.0f32..1.0,
        coef in 0.0f32..1.0,
        consumed in 0.0f32..2.0,
        d in 0.001f32..0.5,
    ) {
        let tc = ThreadController::new(ControllerParams::new(base, coef));
        prop_assert!(tc.score(consumed + d) >= tc.score(consumed));
        let tc_hi = ThreadController::new(ControllerParams::new((base + d).min(1.0), coef));
        prop_assert!(tc_hi.score(consumed) >= tc.score(consumed));
        let tc_coef = ThreadController::new(ControllerParams::new(base, coef + d));
        prop_assert!(tc_coef.score(consumed) >= tc.score(consumed));
    }

    /// Timeout accounting matches first principles: a record is flagged iff
    /// its latency exceeds the SLA.
    #[test]
    fn timeout_flags_consistent(seed in 0u64..300) {
        let spec = AppSpec::get(App::Masstree);
        let srv = server(2);
        let arrivals = constant_rate_arrivals(&spec, 4000.0, SECOND / 4, seed);
        prop_assume!(!arrivals.is_empty());
        let mut gov = FixedFrequency { mhz: 800 }; // slow: force some timeouts
        let res = srv.run(&arrivals, &mut gov, RunOptions::default());
        for rec in &res.records {
            prop_assert_eq!(rec.timed_out, rec.latency > spec.sla);
        }
        let flagged = res.records.iter().filter(|r| r.timed_out).count() as u64;
        prop_assert_eq!(flagged, res.stats.timeouts);
    }
}

#[test]
fn controller_under_overload_eventually_turbos_every_busy_core() {
    // Deterministic scenario rather than proptest: saturate one core with a
    // request that cannot finish before its SLA; the controller must push
    // it to turbo once the score crosses 1.
    let srv = server(1);
    let req = Request {
        id: 0,
        client_id: 0,
        attempt: 0,
        arrival: 0,
        first_arrival: 0,
        work_ref_ns: 40 * MILLISECOND,
        freq_sensitivity: 1.0,
        sla: 10 * MILLISECOND,
        features: vec![],
    };
    let mut tc = ThreadController::new(ControllerParams::new(0.0, 1.5));
    let res = srv.run(
        &[req],
        &mut tc,
        RunOptions {
            tick_ns: MILLISECOND,
            trace: deeppower_suite::sim::TraceConfig::millisecond(),
            ..Default::default()
        },
    );
    let max_f = res.traces.freq.iter().map(|&(_, _, f)| f).max().unwrap();
    assert_eq!(max_f, FreqPlan::xeon_gold_5218r().turbo_mhz);
}
